"""SCoin closed-loop clients (Section VII-B).

Every client owns one ``SAccount``.  In a closed loop, each client
repeatedly transfers one token to another client's account:

* **single-shard** — the target account lives on the client's shard:
  one transfer transaction;
* **cross-shard** (probability = the experiment's cross-shard rate) —
  the target lives elsewhere: the client first *moves its own account*
  to the target's shard (Move1, wait ``p`` blocks, Move2) and then
  transfers there — exactly the paper's choreography.

Latency is measured from the operation's start to the inclusion of its
final transaction: a single-shard transfer takes about one block
(paper: ≈7 s on 5 s blocks); a cross-shard operation takes about five
(Move1 inclusion + the two-block proof wait + Move2 inclusion + the
transfer — the paper's ≈34 s, "confirming the expected latency of
waiting for five blocks per cross-shard transaction").

Two conflict models (Section VII-B.1):

* **oracle mode** (default) — like the paper's main runs, clients only
  target accounts that are not about to move, so no transaction ever
  aborts; implemented with busy/pinned bookkeeping.
* **retry mode** — clients pick targets blindly; a transfer that hits
  a moved-away account fails and is retried after a uniform backoff of
  0–10 block times.  Retry counts are reported (the paper: 66 % of
  retrying transactions retry once, ~1 % more than three times).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.apps.scoin import SCoin
from repro.chain.tx import CallPayload, DeployPayload, sign_transaction
from repro.crypto.keys import Address, KeyPair
from repro.ibc.bridge import IBCBridge
from repro.metrics.collector import LatencySampler, ThroughputCollector
from repro.sharding.cluster import ShardedCluster
from repro.sharding.partition import shard_of


@dataclass
class _Client:
    index: int
    keypair: KeyPair
    account: Optional[Address] = None
    shard: int = 0          # where the account currently lives
    busy: bool = False      # mid-move (oracle mode: not a valid target)
    pins: int = 0           # incoming transfers in flight (oracle mode)
    in_op: bool = False     # closed loop currently running for this client
    think_time: float = 0.0  # pause between ops (skewed-load runs)
    #: (target_shard, done) set by the rebalancing actuator; the client
    #: executes it between ops, once incoming transfers drain
    move_request: Optional[tuple] = None


@dataclass
class WorkloadReport:
    """Everything the Fig. 6/7 harnesses need from one run."""

    num_shards: int
    clients: int
    cross_rate: float
    duration: float
    throughput: ThroughputCollector = field(default_factory=ThroughputCollector)
    latency: LatencySampler = field(default_factory=LatencySampler)
    ops_completed: int = 0
    single_shard_ops: int = 0
    cross_shard_ops: int = 0
    failures: int = 0
    retries_per_op: List[int] = field(default_factory=list)

    @property
    def ops_per_second(self) -> float:
        return self.ops_completed / self.duration if self.duration else 0.0

    @property
    def observed_cross_rate(self) -> float:
        total = self.single_shard_ops + self.cross_shard_ops
        return self.cross_shard_ops / total if total else 0.0

    def retry_histogram(self) -> Dict[int, int]:
        """retries -> number of completed ops with that retry count."""
        hist: Dict[int, int] = {}
        for count in self.retries_per_op:
            hist[count] = hist.get(count, 0) + 1
        return hist


class ScoinWorkload:
    """Builds the token world on a cluster and drives the client pool."""

    def __init__(
        self,
        cluster: ShardedCluster,
        clients_per_shard: int = 250,
        cross_rate: float = 0.1,
        retry_mode: bool = False,
        tokens_per_client: int = 1_000_000,
        seed: int = 7,
        placement: str = "hash",
        hot_shard: Optional[int] = None,
        background_think: float = 0.0,
    ):
        if placement not in ("hash", "home0"):
            raise ValueError("placement must be 'hash' or 'home0'")
        if hot_shard is not None and not 0 <= hot_shard < cluster.num_shards:
            raise ValueError("hot_shard out of range")
        if background_think < 0.0:
            raise ValueError("background_think must be non-negative")
        self.cluster = cluster
        self.cross_rate = cross_rate
        self.retry_mode = retry_mode
        #: skewed-activity mode: clients hash-homed on ``hot_shard``
        #: run flat out while every other client pauses
        #: ``background_think`` seconds between ops — the "one popular
        #: contract community" workload the rebalancing ablation uses.
        self.hot_shard = hot_shard
        self.background_think = background_think
        #: "hash" = the paper's hash partitioning; "home0" = leave every
        #: account on shard 0 (a deliberately skewed deployment for the
        #: load-balancing ablation)
        self.placement = placement
        self.tokens_per_client = tokens_per_client
        self.rng = random.Random(seed)
        self.bridge = IBCBridge(cluster.sim, cluster.shards)
        total = clients_per_shard * cluster.num_shards
        self.clients = [
            _Client(index=i, keypair=KeyPair.from_name(f"scoin-client-{i}"))
            for i in range(total)
        ]
        self.token_owner = KeyPair.from_name("scoin-owner")
        self.token: Optional[Address] = None
        self._by_account: Dict[Address, _Client] = {}
        self.report: Optional[WorkloadReport] = None
        self._measuring = False
        self._setup_done = False
        self._home = self.cluster.shard(0)

    # ------------------------------------------------------------------
    # Setup: deploy the token, create/mint/place accounts
    # ------------------------------------------------------------------

    def setup(self, on_ready) -> None:
        """Asynchronously build the token world; ``on_ready()`` fires
        when every account sits on its hash-assigned shard."""
        deploy = sign_transaction(self.token_owner, DeployPayload(code_hash=SCoin.CODE_HASH))

        def after_deploy(receipt) -> None:
            assert receipt.success, receipt.error
            self.token = receipt.return_value
            self._create_accounts(on_ready)

        self._home.wait_for(deploy.tx_id, after_deploy)
        self.cluster.submit(0, deploy)

    def _create_accounts(self, on_ready) -> None:
        pending = [len(self.clients)]

        def after_create(client: _Client, receipt) -> None:
            assert receipt.success, receipt.error
            client.account, _salt = receipt.return_value
            self._by_account[client.account] = client
            mint = sign_transaction(
                self.token_owner,
                CallPayload(self.token, "mint_to", (client.account, self.tokens_per_client)),
            )
            self._home.wait_for(mint.tx_id, lambda r: after_mint(client, r))
            self.cluster.submit(0, mint)

        def after_mint(client: _Client, receipt) -> None:
            assert receipt.success, receipt.error
            pending[0] -= 1
            if pending[0] == 0:
                self._place_accounts(on_ready)

        for client in self.clients:
            tx = sign_transaction(
                client.keypair, CallPayload(self.token, "new_account_for", (client.keypair.address,))
            )
            self._home.wait_for(tx.tx_id, lambda r, c=client: after_create(c, r))
            self.cluster.submit(0, tx)

    def _place_accounts(self, on_ready) -> None:
        """Move every account to its hash-partitioned home shard."""
        if self.hot_shard is not None:
            for client in self.clients:
                home = (
                    self.cluster.shard_index_of(client.account)
                    if self.placement == "hash"
                    else 0
                )
                client.think_time = (
                    0.0 if home == self.hot_shard else self.background_think
                )
        movers = [
            c for c in self.clients
            if self.placement == "hash"
            and self.cluster.shard_index_of(c.account) != 0
        ]
        for client in self.clients:
            client.shard = 0
        if not movers:
            self._setup_done = True
            on_ready()
            return
        pending = [len(movers)]

        def after_move(client: _Client, phases) -> None:
            assert phases.success, phases.error
            client.shard = phases.target_chain - 1
            pending[0] -= 1
            if pending[0] == 0:
                self._setup_done = True
                on_ready()

        for client in movers:
            target_index = self.cluster.shard_index_of(client.account)
            self.bridge.move_contract(
                client.keypair,
                client.account,
                source_id=self._home.chain_id,
                target_id=target_index + 1,
                on_done=lambda phases, c=client: after_move(c, phases),
            )

    # ------------------------------------------------------------------
    # Explicit relocation (load-balancing ablation)
    # ------------------------------------------------------------------

    def relocate(self, client_index: int, target_shard: int, on_done=None) -> None:
        """Move one client's account to ``target_shard`` via the full
        Move protocol (the client 'tempted to move to an underused
        shard' of Section IV-B)."""
        client = self.clients[client_index]
        if client.account is None or client.shard == target_shard:
            if on_done is not None:
                on_done(None)
            return
        client.busy = True

        def after(phases) -> None:
            client.busy = False
            if phases.success:
                client.shard = target_shard
            if on_done is not None:
                on_done(phases)

        self.bridge.move_contract(
            client.keypair,
            client.account,
            source_id=client.shard + 1,
            target_id=target_shard + 1,
            on_done=after,
        )

    def placements(self):
        """address -> current shard, for rebalance planning."""
        return {
            c.account: c.shard for c in self.clients if c.account is not None
        }

    def client_for(self, account: Address) -> Optional[_Client]:
        """The client owning ``account``, if it is one of ours."""
        return self._by_account.get(account)

    def mover_for(self, account: Address) -> Optional[KeyPair]:
        """The keypair authorized to move ``account`` (for actuators)."""
        client = self._by_account.get(account)
        return client.keypair if client is not None else None

    def relocate_actuator(self):
        """An actuator for :class:`~repro.rebalance.rebalancer
        .Rebalancer` that moves accounts via :meth:`relocate`, keeping
        the client state machine consistent.  A busy (already-moving)
        account fails the decision instead of racing it; an account in
        its closed loop is moved *cooperatively* — a move request is
        parked on the client, new transfers stop targeting it, and the
        client executes the move between ops once its incoming pins
        drain, resuming from the new shard afterwards.  The driver's
        ``move_timeout`` covers a request the loop never reaches."""

        def actuate(decision, done) -> None:
            client = self._by_account.get(decision.contract)
            if client is None or client.busy or client.move_request is not None:
                done(False)
                return

            def on_moved(phases) -> None:
                done(True if phases is None else bool(phases.success))

            if client.in_op:
                client.move_request = (decision.target_shard, on_moved)
            else:
                self.relocate(client.index, decision.target_shard, on_done=on_moved)

        return actuate

    # ------------------------------------------------------------------
    # Measurement phase
    # ------------------------------------------------------------------

    def run(self, duration: float, warmup: float = 0.0) -> WorkloadReport:
        """Block until setup + ``warmup + duration`` simulated seconds
        of closed-loop traffic have elapsed; returns the report."""
        sim = self.cluster.sim
        self.cluster.start()
        ready = [False]
        self.setup(lambda: ready.__setitem__(0, True))
        # Drive the simulator until the world is built.
        while not ready[0]:
            progressed = sim.run(until=sim.now + 10.0)
            if progressed == 0 and not ready[0] and sim.pending() == 0:
                raise RuntimeError("setup stalled")
        start = sim.now + warmup
        end = start + duration
        return self._measure(start, end, duration)

    def measure_again(self, duration: float, warmup: float = 0.0) -> WorkloadReport:
        """Run a further measurement phase on the already-built world
        (e.g. after a rebalancing pass).  Clients whose closed loop is
        still winding down are not double-started."""
        sim = self.cluster.sim
        start = sim.now + warmup
        return self._measure(start, start + duration, duration)

    def _measure(self, start: float, end: float, duration: float) -> WorkloadReport:
        sim = self.cluster.sim
        report = WorkloadReport(
            num_shards=self.cluster.num_shards,
            clients=len(self.clients),
            cross_rate=self.cross_rate,
            duration=duration,
        )
        self.report = report
        self._measure_start = start
        self._measure_end = end
        self._measuring = False
        for client in self.clients:
            if not client.in_op and not client.busy:
                self._start_next_op(client)
        sim.schedule(max(start - sim.now, 0.0), lambda: setattr(self, "_measuring", True))
        sim.run(until=end)
        self._measuring = False
        return report

    # ------------------------------------------------------------------
    # Client state machine
    # ------------------------------------------------------------------

    def _pick_target(self, client: _Client, want_cross: bool) -> Optional[_Client]:
        """Choose a target of the decided kind.

        Rejection-samples from the client pool (bounded attempts) so an
        operation costs O(1) rather than a scan of every client.  In
        oracle mode busy (mid-move) accounts are never chosen — the
        paper's conflict-free main runs.
        """
        for _attempt in range(64):
            other = self.clients[self.rng.randrange(len(self.clients))]
            if other is client or other.account is None:
                continue
            if not self.retry_mode and (
                other.busy or other.move_request is not None
            ):
                # Oracle mode: never target an account that is moving or
                # about to — its pins must drain so the move can start.
                continue
            if want_cross != (other.shard != client.shard):
                continue
            return other
        return None

    def _start_next_op(
        self,
        client: _Client,
        retries: int = 0,
        started: Optional[float] = None,
        want_cross: Optional[bool] = None,
    ) -> None:
        if self.cluster.sim.now >= getattr(self, "_measure_end", float("inf")):
            client.in_op = False
            return
        if client.busy:
            # The account is mid-relocation (e.g. the rebalancer is
            # moving it); starting a transfer from it now would only
            # abort on the locked contract.  Wait the move out.
            self.cluster.sim.schedule(
                1.0, lambda: self._start_next_op(client, retries, started, want_cross)
            )
            return
        if client.move_request is not None:
            # The rebalancer asked for this account.  Yield the op slot:
            # once the incoming transfers drain (nobody new targets a
            # move-pending account), run the move, then resume the loop
            # from the account's new home.
            if client.pins > 0:
                self.cluster.sim.schedule(
                    1.0, lambda: self._start_next_op(client)
                )
                return
            target_shard, on_moved = client.move_request
            client.move_request = None

            def after_move(phases) -> None:
                on_moved(phases)
                self._start_next_op(client)

            self.relocate(client.index, target_shard, on_done=after_move)
            return
        client.in_op = True
        if want_cross is None:
            # Decide the operation kind once; deferrals and target
            # re-picks keep it, so the configured cross-shard rate is
            # honoured (a re-roll on every deferral would bias toward
            # single-shard operations).
            want_cross = (
                self.cluster.num_shards > 1 and self.rng.random() < self.cross_rate
            )
        target = self._pick_target(client, want_cross)
        if target is None:
            # No viable target right now; try again shortly.
            self.cluster.sim.schedule(
                1.0, lambda: self._start_next_op(client, retries, started, want_cross)
            )
            return
        # Retried operations keep their original start time, so the
        # Fig. 7 (left) latency includes backoff and re-execution.
        started = started if started is not None else self.cluster.sim.now
        if not want_cross:
            self._single_shard_transfer(client, target, started, retries)
        elif not self.retry_mode and client.pins > 0:
            # Oracle mode: this account has incoming transfers in
            # flight, so it must not move now — retry the pick shortly
            # (the pins drain within a block).
            self.cluster.sim.schedule(
                1.0, lambda: self._start_next_op(client, retries, started, want_cross)
            )
        else:
            self._cross_shard_transfer(client, target, started, retries)

    def _single_shard_transfer(self, client, target, started, retries) -> None:
        target.pins += 1
        tx = sign_transaction(
            client.keypair,
            CallPayload(client.account, "transfer_tokens", (target.account, 1)),
        )

        def after(receipt) -> None:
            if not receipt.success:
                target.pins -= 1
                self._handle_failure(client, retries, started, want_cross=False)
                return
            self._finish_op(client, target, started, "single-shard", retries)

        self.cluster.shard(client.shard).wait_for(tx.tx_id, after)
        self.cluster.submit(client.shard, tx)

    def _cross_shard_transfer(self, client, target, started, retries) -> None:
        client.busy = True
        target.pins += 1
        destination = target.shard

        def completion(mover_kp: KeyPair):
            return sign_transaction(
                mover_kp,
                CallPayload(client.account, "transfer_tokens", (target.account, 1)),
            )

        def after(phases) -> None:
            client.busy = False
            # The account lives wherever the *move* got to, regardless
            # of whether the completion transfer succeeded — otherwise a
            # failed completion leaves the client retrying Move1 from a
            # shard where its account is already locked, forever.
            if phases.move2_included_at is not None:
                client.shard = destination
            if not phases.success:
                target.pins -= 1
                self._handle_failure(client, retries, started, want_cross=True)
                return
            self._finish_op(client, target, started, "cross-shard", retries)

        self.bridge.move_contract(
            client.keypair,
            client.account,
            source_id=client.shard + 1,
            target_id=destination + 1,
            completions=(completion,),
            on_done=after,
        )

    def _finish_op(self, client, target, started, kind, retries) -> None:
        target.pins -= 1
        now = self.cluster.sim.now
        report = self.report
        if report is not None and self._measuring and started >= self._measure_start:
            report.ops_completed += 1
            report.throughput.record(now)
            report.latency.add(kind, now - started)
            if kind == "single-shard":
                report.single_shard_ops += 1
            else:
                report.cross_shard_ops += 1
            report.retries_per_op.append(retries)
        if client.think_time > 0.0:
            self.cluster.sim.schedule(
                client.think_time, lambda: self._start_next_op(client)
            )
        else:
            self._start_next_op(client)

    def _handle_failure(self, client, retries, started, want_cross) -> None:
        report = self.report
        if report is not None and self._measuring:
            report.failures += 1
        if not self.retry_mode:
            # Oracle mode should never conflict; count and move on.
            self._start_next_op(client)
            return
        # Section VII-B.1: wait 0..10 block times before retrying; the
        # retried operation keeps its original start time.
        backoff = self.rng.uniform(0, 10) * self.cluster.shard(0).params.block_interval
        self.cluster.sim.schedule(
            backoff,
            lambda: self._start_next_op(client, retries + 1, started, want_cross),
        )
