"""Open-loop workload generation.

The paper's SCoin clients are closed-loop (a fixed population, each
waiting for its previous operation); the complementary *open-loop*
model offers transactions at a fixed rate regardless of completions —
the standard way to expose a system's saturation point.  Arrivals are
Poisson: exponential inter-arrival times at the configured offered
load.

Used by ``benchmarks/bench_ablation_saturation.py`` to trace the
classic knee: achieved throughput tracks offered load up to the shard's
block capacity (``max_block_txs / block_interval``), then flattens
while latency grows without bound as the mempool backlog builds.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional

from repro.chain.tx import TransferPayload, sign_transaction
from repro.crypto.keys import KeyPair
from repro.metrics.collector import LatencySampler, ThroughputCollector
from repro.sharding.cluster import ShardedCluster


@dataclass
class OpenLoopReport:
    """Offered vs. achieved results of one open-loop run."""

    offered_rate: float
    duration: float
    submitted: int = 0
    completed: int = 0
    throughput: ThroughputCollector = field(default_factory=ThroughputCollector)
    latency: LatencySampler = field(default_factory=LatencySampler)
    backlog_at_end: int = 0

    @property
    def achieved_rate(self) -> float:
        return self.completed / self.duration if self.duration else 0.0

    @property
    def mean_latency(self) -> float:
        samples = self.latency.all_samples()
        return sum(samples) / len(samples) if samples else 0.0


class OpenLoopTransferWorkload:
    """Poisson transfer arrivals against one shard of a cluster."""

    def __init__(
        self,
        cluster: ShardedCluster,
        offered_rate: float,
        shard_index: int = 0,
        seed: int = 0,
    ):
        self.cluster = cluster
        self.offered_rate = offered_rate
        self.shard_index = shard_index
        self.rng = random.Random(seed)
        self.sender = KeyPair.from_name("open-loop-sender")
        self.receiver = KeyPair.from_name("open-loop-receiver")
        cluster.fund_all({self.sender.address: 10**12})

    def run(self, duration: float, warmup: float = 0.0) -> OpenLoopReport:
        """Offer load for ``warmup + duration`` simulated seconds and
        measure the post-warmup window."""
        sim = self.cluster.sim
        shard = self.cluster.shard(self.shard_index)
        self.cluster.start()
        start = sim.now + warmup
        end = start + duration
        report = OpenLoopReport(offered_rate=self.offered_rate, duration=duration)

        def arrive() -> None:
            if sim.now >= end:
                return
            submitted_at = sim.now
            tx = sign_transaction(
                self.sender, TransferPayload(to=self.receiver.address, amount=1)
            )
            if sim.now >= start:
                report.submitted += 1

            def on_receipt(receipt) -> None:
                if not receipt.success:
                    return
                # Achieved throughput counts every completion inside the
                # measurement window (under overload, work completing
                # now was submitted long ago); latency samples only
                # in-window submissions, so they are unbiased.
                if sim.now >= start:
                    report.completed += 1
                    report.throughput.record(sim.now)
                if submitted_at >= start:
                    report.latency.add("transfer", sim.now - submitted_at)

            shard.wait_for(tx.tx_id, on_receipt)
            self.cluster.submit(self.shard_index, tx)
            sim.schedule(self.rng.expovariate(self.offered_rate), arrive)

        sim.schedule(self.rng.expovariate(self.offered_rate), arrive)
        sim.run(until=end)
        report.backlog_at_end = len(shard.mempool)
        return report
