"""Open-loop Zipf-skewed client populations against a gateway fleet.

The fleet's macro harness: up to 10⁴ clients offer load through a
:class:`~repro.gateway.SimNetTransport` pointed at a
:class:`~repro.gateway.GatewayFleet`, with

* **Zipf-skewed rates** — client *i* offers at a rate ∝ 1/(i+1)^s, so
  a few heavy hitters dominate the offered load the way real serving
  populations do (this is what the deficit-round-robin fairness is
  for: the tail of light clients must still get served);
* **a priority mix** — each submission is tagged ``move`` / ``view`` /
  ``bulk`` by configurable proportions (default 5% / 10% / 85%), so
  saturation exercises the classed queue: sheds should land on bulk,
  and move-class latency should stay bounded while bulk is drowning;
* **Poisson arrivals** drawn from the node's seeded simulator RNG —
  one seed replays the whole run, admission decisions included
  (:meth:`~repro.gateway.fleet.GatewayFleet.log_digest` is the
  byte-identity witness the benchmark's replay gate compares).

The report splits outcomes and latency percentiles by class, which is
what ``benchmarks/bench_gateway_fleet.py`` gates on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.chain.params import burrow_params
from repro.chain.tx import TransferPayload, sign_transaction
from repro.crypto.keys import KeyPair
from repro.errors import ShedByClass
from repro.gateway import GatewayFleet, GatewayLimits, SimNetTransport
from repro.gateway.classes import FLUSH_ORDER
from repro.metrics.collector import LatencySampler

#: class labels in flush order (report key order)
CLASS_LABELS = tuple(cls.label for cls in FLUSH_ORDER)


@dataclass
class FleetWorkloadReport:
    """Per-class admission outcomes of one fleet saturation run."""

    clients: int
    replicas: int
    duration: float
    offered_rate: float  # aggregate submissions/second offered
    submitted: int = 0
    confirmed: int = 0
    unresolved: int = 0
    blocks: int = 0
    peak_queue_depth: int = 0
    final_root: str = ""
    log_digest: str = ""
    shed_codes: Dict[str, int] = field(default_factory=dict)
    #: victim class label -> queue sheds charged to it (attribution)
    shed_by_class: Dict[str, int] = field(default_factory=dict)
    offered_by_class: Dict[str, int] = field(default_factory=dict)
    confirmed_by_class: Dict[str, int] = field(default_factory=dict)
    latency: LatencySampler = field(default_factory=LatencySampler)

    @property
    def shed_total(self) -> int:
        return sum(self.shed_codes.values())

    @property
    def throughput(self) -> float:
        """Confirmed transactions per simulated second."""
        return self.confirmed / self.duration if self.duration else 0.0

    def latency_p99(self, label: str) -> Optional[float]:
        """p99 admit→confirm latency of one class (None: no samples)."""
        samples = sorted(self.latency.samples(label))
        if not samples:
            return None
        rank = min(len(samples) - 1, int(round(0.99 * (len(samples) - 1))))
        return samples[rank]

    def to_dict(self) -> dict:
        """JSON-shaped summary (what the benchmark emits and gates on)."""
        return {
            "clients": self.clients,
            "replicas": self.replicas,
            "duration": self.duration,
            "offered_rate": round(self.offered_rate, 2),
            "submitted": self.submitted,
            "confirmed": self.confirmed,
            "throughput": round(self.throughput, 2),
            "shed_codes": dict(sorted(self.shed_codes.items())),
            "shed_by_class": dict(sorted(self.shed_by_class.items())),
            "offered_by_class": dict(sorted(self.offered_by_class.items())),
            "confirmed_by_class": dict(sorted(self.confirmed_by_class.items())),
            "latency_p99_by_class": {
                label: (
                    None
                    if self.latency_p99(label) is None
                    else round(self.latency_p99(label), 3)
                )
                for label in CLASS_LABELS
            },
            "unresolved": self.unresolved,
            "blocks": self.blocks,
            "peak_queue_depth": self.peak_queue_depth,
            "final_root": self.final_root,
            "log_digest": self.log_digest,
        }


class FleetWorkload:
    """An open-loop, Zipf-skewed, class-mixed population on one fleet."""

    def __init__(
        self,
        clients: int = 10_000,
        replicas: int = 4,
        total_rate: float = 200.0,
        zipf_s: float = 1.1,
        class_mix: Tuple[float, float, float] = (0.05, 0.10, 0.85),
        seed: int = 0,
        limits: Optional[GatewayLimits] = None,
        block_interval: float = 2.0,
        max_block_txs: int = 300,
        executor_workers: int = 0,
        transport_latency: float = 0.05,
        transport_jitter: float = 0.05,
    ):
        self.node_params = burrow_params(
            1,
            max_block_txs=max_block_txs,
            block_interval=block_interval,
            executor_workers=executor_workers,
        )
        from repro.node import Node

        self.node = Node(self.node_params, seed=seed, verify_signatures=False)
        self.limits = limits if limits is not None else GatewayLimits(
            max_queue_depth=256,
            batch_size=16,
            flush_interval=0.5,
            mempool_headroom=4,
        )
        self.fleet = GatewayFleet(self.node, replicas=replicas, limits=self.limits)
        self.transport = SimNetTransport(
            self.fleet, latency=transport_latency, jitter=transport_jitter
        )
        self.total_rate = total_rate
        self.class_mix = class_mix
        # Zipf weights: rate_i ∝ 1/(i+1)^s, normalized to total_rate.
        weights = [1.0 / (i + 1) ** zipf_s for i in range(clients)]
        z = sum(weights)
        self.rates = [total_rate * w / z for w in weights]
        self.keypairs = [KeyPair.from_name(f"fleet-client-{i}") for i in range(clients)]
        self.node.chain(1).fund({kp.address: 10**12 for kp in self.keypairs})
        #: (class label, handle) per submission, in admission order
        self.submissions: List[Tuple[str, object]] = []
        self._nonce = 0

    def _pick_class(self) -> str:
        move_p, view_p, _bulk_p = self.class_mix
        draw = self.node.sim.rng.random()
        if draw < move_p:
            return "move"
        if draw < move_p + view_p:
            return "view"
        return "bulk"

    def _submit_one(self, index: int) -> None:
        rng = self.node.sim.rng
        sender = self.keypairs[index]
        target = self.keypairs[rng.randrange(len(self.keypairs))]
        self._nonce += 1
        tx = sign_transaction(
            sender, TransferPayload(to=target.address, amount=1), nonce=self._nonce
        )
        label = self._pick_class()
        handle = self.transport.submit(
            tx, 1, client_id=f"fleet-client-{index}", priority=label
        )
        self.submissions.append((label, handle))

    def _arrival_loop(self, index: int, until: float) -> None:
        rng = self.node.sim.rng
        delay = rng.expovariate(self.rates[index])
        if self.node.now + delay > until:
            return

        def fire() -> None:
            self._submit_one(index)
            self._arrival_loop(index, until)

        self.node.sim.schedule(delay, fire)

    def run(self, duration: float = 60.0, drain: float = 30.0) -> FleetWorkloadReport:
        """Offer load for ``duration`` simulated seconds, then let the
        system drain for ``drain`` more before reporting."""
        self.fleet.start()
        for index in range(len(self.keypairs)):
            self._arrival_loop(index, until=duration)
        self.node.run(until=duration + drain)
        self.fleet.stop()

        chain = self.node.chain(1)
        report = FleetWorkloadReport(
            clients=len(self.keypairs),
            replicas=len(self.fleet),
            duration=duration,
            offered_rate=self.total_rate,
            blocks=chain.height,
            peak_queue_depth=self.fleet.peak_queue_depth[1],
            final_root=chain.head.header.state_root.hex(),
            log_digest=self.fleet.log_digest(),
        )
        for label in CLASS_LABELS:
            report.offered_by_class[label] = 0
            report.confirmed_by_class[label] = 0
        for label, handle in self.submissions:
            report.submitted += 1
            report.offered_by_class[label] += 1
            if handle.error is not None:
                code = handle.error.code
                report.shed_codes[code] = report.shed_codes.get(code, 0) + 1
            elif handle.receipt is not None:
                report.confirmed += 1
                report.confirmed_by_class[label] += 1
                if handle.admitted_at is not None and handle.resolved_at is not None:
                    report.latency.add(
                        label, handle.resolved_at - handle.admitted_at
                    )
            else:
                report.unresolved += 1
        # Victim attribution comes from the errors themselves: each
        # ShedByClass names the class that actually lost its slot
        # (which may differ from the enqueuer's when a higher class
        # evicted it).
        for label, handle in self.submissions:
            error = handle.error
            if isinstance(error, ShedByClass) and error.shed_class:
                report.shed_by_class[error.shed_class] = (
                    report.shed_by_class.get(error.shed_class, 0) + 1
                )
        return report
