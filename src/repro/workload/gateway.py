"""Open-loop client fleets against the request gateway.

The saturation harness behind ``python -m repro gateway`` and
``benchmarks/bench_gateway_saturation.py``: N simulated clients submit
native transfers through a :class:`~repro.gateway.SimNetTransport`
with Poisson arrivals at a configured per-client rate.  Past the
chain's block capacity the bounded admission queue fills and the
gateway sheds — the report splits outcomes by machine-readable reason
code, which is how the benchmark asserts that backpressure is typed
rather than an out-of-memory.

Everything stochastic (arrival times, transfer targets, transport
jitter) draws from the node's seeded simulator RNG, so a run is
replayed byte-identically by its seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.chain.params import burrow_params
from repro.chain.tx import TransferPayload, sign_transaction
from repro.crypto.keys import KeyPair
from repro.gateway import Gateway, GatewayLimits, RequestHandle, SimNetTransport
from repro.metrics.collector import LatencySampler
from repro.node import Node


@dataclass
class GatewayWorkloadReport:
    """Admission-level outcomes of one gateway saturation run."""

    clients: int
    duration: float
    offered_rate: float  # aggregate submissions/second offered
    submitted: int = 0
    confirmed: int = 0
    shed: Dict[str, int] = field(default_factory=dict)  # reason code -> count
    unresolved: int = 0  # still pending when the run ended
    blocks: int = 0
    peak_queue_depth: int = 0
    final_root: str = ""
    latency: LatencySampler = field(default_factory=LatencySampler)

    @property
    def shed_total(self) -> int:
        return sum(self.shed.values())

    @property
    def throughput(self) -> float:
        """Confirmed transactions per simulated second."""
        return self.confirmed / self.duration if self.duration else 0.0

    @property
    def shed_rate(self) -> float:
        return self.shed_total / self.submitted if self.submitted else 0.0

    def to_dict(self) -> dict:
        """JSON-shaped summary (what ``--json`` and the benchmark emit)."""
        samples = self.latency.all_samples()
        return {
            "clients": self.clients,
            "duration": self.duration,
            "offered_rate": self.offered_rate,
            "submitted": self.submitted,
            "confirmed": self.confirmed,
            "throughput": round(self.throughput, 2),
            "shed": dict(sorted(self.shed.items())),
            "shed_rate": round(self.shed_rate, 4),
            "unresolved": self.unresolved,
            "blocks": self.blocks,
            "peak_queue_depth": self.peak_queue_depth,
            "final_root": self.final_root,
            "latency_mean": round(sum(samples) / len(samples), 3) if samples else None,
        }


class GatewayWorkload:
    """N open-loop transfer clients through one gateway-fronted chain."""

    def __init__(
        self,
        clients: int = 64,
        rate_per_client: float = 1.0,
        seed: int = 0,
        limits: Optional[GatewayLimits] = None,
        block_interval: float = 5.0,
        max_block_txs: int = 500,
        transport_latency: float = 0.05,
        transport_jitter: float = 0.05,
    ):
        self.node = Node(
            burrow_params(1, max_block_txs=max_block_txs, block_interval=block_interval),
            seed=seed,
            verify_signatures=False,
        )
        self.gateway = Gateway(
            self.node, limits if limits is not None else GatewayLimits()
        )
        self.transport = SimNetTransport(
            self.gateway, latency=transport_latency, jitter=transport_jitter
        )
        self.rate_per_client = rate_per_client
        self.keypairs = [KeyPair.from_name(f"gw-client-{i}") for i in range(clients)]
        self.node.chain(1).fund({kp.address: 10**12 for kp in self.keypairs})
        self.handles: List[RequestHandle] = []
        self._nonce = 0

    def _submit_one(self, index: int) -> None:
        rng = self.node.sim.rng
        sender = self.keypairs[index]
        target = self.keypairs[rng.randrange(len(self.keypairs))]
        self._nonce += 1
        tx = sign_transaction(
            sender, TransferPayload(to=target.address, amount=1), nonce=self._nonce
        )
        handle = self.transport.submit(tx, 1, client_id=f"gw-client-{index}")
        self.handles.append(handle)

    def _arrival_loop(self, index: int, until: float) -> None:
        rng = self.node.sim.rng
        delay = rng.expovariate(self.rate_per_client)
        if self.node.now + delay > until:
            return
        def fire() -> None:
            self._submit_one(index)
            self._arrival_loop(index, until)
        self.node.sim.schedule(delay, fire)

    def run(self, duration: float = 120.0, drain: float = 30.0) -> GatewayWorkloadReport:
        """Offer load for ``duration`` simulated seconds, then let the
        system drain for ``drain`` more before reporting."""
        self.gateway.start()
        for index in range(len(self.keypairs)):
            self._arrival_loop(index, until=duration)
        self.node.run(until=duration + drain)
        self.gateway.stop()

        chain = self.node.chain(1)
        report = GatewayWorkloadReport(
            clients=len(self.keypairs),
            duration=duration,
            offered_rate=len(self.keypairs) * self.rate_per_client,
            blocks=chain.height,
            peak_queue_depth=self.gateway.peak_queue_depth[1],
            final_root=chain.head.header.state_root.hex(),
        )
        for handle in self.handles:
            report.submitted += 1
            if handle.error is not None:
                code = handle.error.code
                report.shed[code] = report.shed.get(code, 0) + 1
            elif handle.receipt is not None:
                report.confirmed += 1
                if handle.admitted_at is not None and handle.resolved_at is not None:
                    report.latency.add(
                        "request", handle.resolved_at - handle.admitted_at
                    )
            else:
                report.unresolved += 1
        return report
