"""The replication relay: one source→target sync pump.

A :class:`ReplicationRelay` keeps every mirror of one (source chain,
target chain) pair within the staleness bound.  It is *event-driven*:
the target chain invokes the relay whenever its light client ingests a
source-chain header (``Chain.subscribe_headers`` fires after the store
update, so the relay always sees the new head), and the relay then
tries to advance each mirror to the newest provable height::

    state_height = target_store.head − p − state_root_lag

For each mirror the relay (1) checks the source record's *live* ``L_c``
— a contract that left the source (Move1 landed) tombstones its mirrors
immediately, making them unavailable rather than stale mid-move; (2) on
fork-aware stores, checks that the header the last update was verified
against is still canonical — if a reorg orphaned it the mirror **halts**
and its replicated storage is wiped from the target state, so orphaned
data can never be served, not even through a raw ``chain.view``; (3)
asks the source for a delta (or full) :class:`ReplicaUpdate`, verifies
it against the target's own light client, and applies it atomically via
``WorldState.apply_mirror`` between blocks.

A verification failure is never absorbed silently: ``VS`` misses (header
not yet confirmed, or reorged away) leave the mirror at its last good
state — or halted, per (2) — while integrity mismatches (a proof that
does not reproduce the claimed root) halt the mirror outright.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.chain.block import BlockHeader
from repro.chain.chain import Chain
from repro.chain.lightclient import ForkAwareHeaderStore
from repro.crypto.keys import Address
from repro.errors import ProofError, StateError, UnknownRootError
from repro.replicate.mirror import HALTED, LIVE, SYNCING, TOMBSTONED, Mirror
from repro.telemetry import Telemetry


class ReplicationRelay:
    """Synchronizes the read-only mirrors of one chain pair."""

    def __init__(
        self,
        source: Chain,
        target: Chain,
        telemetry: Optional[Telemetry] = None,
    ):
        self.source = source
        self.target = target
        self.telemetry = telemetry if telemetry is not None else Telemetry.disabled()
        self.mirrors: Dict[Address, Mirror] = {}
        self._started = False
        #: plain lifetime counters (assertable without a metrics registry)
        self.updates = 0
        self.halts = 0
        self.tombstones = 0
        metrics = self.telemetry.metrics
        labels = {"source": source.chain_id, "target": target.chain_id}
        self._m_updates = metrics.counter("replicate_updates_total", **labels)
        self._m_bytes = metrics.histogram("replicate_update_bytes", **labels)
        self._m_full = metrics.counter("replicate_full_syncs_total", **labels)
        self._m_halts = metrics.counter("replicate_halts_total", **labels)
        self._m_tombstones = metrics.counter("replicate_tombstones_total", **labels)
        self._m_staleness = metrics.histogram(
            "replicate_staleness_blocks", **labels
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Subscribe to the target's header stream (idempotent)."""
        if self._started:
            return
        self._started = True
        self.target.subscribe_headers(self._on_header)
        self.sync_all()

    def stop(self) -> None:
        """Unsubscribe from the target's header stream (idempotent)."""
        if not self._started:
            return
        self._started = False
        self.target.unsubscribe_headers(self._on_header)

    def _on_header(self, header: BlockHeader) -> None:
        if header.chain_id == self.source.chain_id:
            self.sync_all()

    # ------------------------------------------------------------------
    # Mirror set
    # ------------------------------------------------------------------

    def add_contract(self, contract: Address) -> Mirror:
        """Start mirroring ``contract`` on the target (idempotent).

        The source begins capturing per-block deltas; the mirror stays
        ``SYNCING`` (unavailable) until the first verified update lands.
        """
        mirror = self.mirrors.get(contract)
        if mirror is not None:
            return mirror
        self.source.enable_replication(contract)
        bound = (
            self.source.params.confirmation_depth
            + self.source.params.state_root_lag
        )
        mirror = Mirror(
            contract=contract,
            source_chain=self.source.chain_id,
            target_chain=self.target.chain_id,
            staleness_bound=bound,
        )
        self.mirrors[contract] = mirror
        self.sync_one(mirror)
        return mirror

    def remove_contract(self, contract: Address) -> None:
        """Stop mirroring and wipe the replica's storage (no-op if
        absent)."""
        mirror = self.mirrors.pop(contract, None)
        if mirror is None:
            return
        self.target.state.drop_mirror(contract)
        mirror.tombstone("dropped")

    # ------------------------------------------------------------------
    # Sync
    # ------------------------------------------------------------------

    def sync_all(self) -> None:
        """Advance every mirror (runs on each ingested source header)."""
        for mirror in self.mirrors.values():
            self.sync_one(mirror)

    def sync_one(self, mirror: Mirror) -> None:
        """Advance one mirror toward the newest provable source state."""
        if mirror.status == TOMBSTONED:
            return
        store = self.target.light_client.store_for(self.source.chain_id)
        if store is None:
            return

        # (1) A contract that left the source makes its mirrors
        # unavailable *immediately* — a reader must get a typed error,
        # never state that is about to be superseded on another chain.
        location = self.source.location_of(mirror.contract)
        if location is not None and location != self.source.chain_id:
            self._tombstone(mirror, f"source moved to chain {location}", location)
            return

        # (2) Reorg safety: the proof we applied must still sit on the
        # canonical branch of the source as this target sees it.
        if (
            mirror.applied_header is not None
            and isinstance(store, ForkAwareHeaderStore)
            and not store.is_canonical(mirror.applied_header)
        ):
            self._halt(mirror, "applied header reorged away")
            # fall through: a verified update on the new branch revives it

        desired = store.head_height - store.confirmation_depth
        desired -= self.source.params.state_root_lag
        if desired < 0:
            return
        if mirror.status == LIVE and desired <= mirror.synced_height:
            return

        tracer = self.telemetry.tracer
        span = tracer.start_trace(
            "replicate.sync",
            contract=str(mirror.contract),
            source_chain=self.source.chain_id,
            target_chain=self.target.chain_id,
            state_height=desired,
        )
        ok = self._advance(mirror, store, desired)
        span.end(success=ok)

    def _advance(self, mirror: Mirror, store, desired: int) -> bool:
        since = mirror.synced_height if mirror.synced_height >= 0 else None
        try:
            update = self.source.build_replica_update(
                mirror.contract, since=since, upto=desired
            )
        except ProofError:
            # The requested height is not servable (snapshot pruned, log
            # younger than the height) — wait for the next header.
            return False
        base = mirror.image if not update.is_full else None
        try:
            leaf, image = update.verify(
                self.target.light_client,
                self.source.params.tree_factory,
                base_image=base,
            )
        except UnknownRootError:
            # VS failed: not yet p-confirmed here, or the root was
            # reorged away.  Keep the last good (or halted) state.
            return False
        except ProofError as exc:
            self._halt(mirror, f"update failed verification: {exc}")
            return False

        if leaf.location != self.source.chain_id:
            # The *proven* state says the contract moved — authoritative
            # within the staleness bound even if the live check raced.
            self._tombstone(
                mirror, f"proven state moved to chain {leaf.location}", leaf.location
            )
            return False

        record = self.target.state.contract(mirror.contract)
        if (
            record is not None
            and not self.target.state.is_mirror(mirror.contract)
            and record.location == self.target.chain_id
        ):
            # The contract re-homed *onto* this chain (Move2 landed
            # here): readers use the active copy, the mirror retires.
            mirror.tombstone("contract is active on the target chain")
            self.tombstones += 1
            self._m_tombstones.inc()
            return False

        try:
            self.target.state.apply_mirror(
                mirror.contract,
                code_hash=leaf.code_hash,
                code=update.code,
                storage=image,
                balance=leaf.balance,
                location=leaf.location,
            )
        except StateError as exc:
            self._halt(mirror, f"apply failed: {exc}")
            return False
        header = store.header_at(update.proof_height)
        mirror.mark_live(desired, header, image, full=update.is_full)
        self.updates += 1
        self._m_updates.inc()
        self._m_bytes.observe(update.size_bytes())
        if update.is_full:
            self._m_full.inc()
        self._m_staleness.observe(mirror.staleness(self.source.height))
        return True

    # ------------------------------------------------------------------

    def _halt(self, mirror: Mirror, reason: str) -> None:
        if mirror.status == HALTED:
            return
        self.target.state.drop_mirror(mirror.contract)
        mirror.halt(reason)
        # Everything verified so far sat on the orphaned branch: forget
        # it, so recovery is a full resync on the new canonical branch.
        mirror.image = {}
        mirror.synced_height = -1
        mirror.applied_header = None
        self.halts += 1
        self._m_halts.inc()

    def _tombstone(
        self, mirror: Mirror, reason: str, moved_to: Optional[int]
    ) -> None:
        if mirror.status == TOMBSTONED:
            return
        self.target.state.drop_mirror(mirror.contract)
        mirror.tombstone(reason, moved_to)
        self.tombstones += 1
        self._m_tombstones.inc()

    def statuses(self) -> List[str]:
        """Every mirror's serving status (operator/debug surface)."""
        return [mirror.status for mirror in self.mirrors.values()]
