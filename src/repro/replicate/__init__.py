"""Verifiable cross-chain read replicas (SmartSync-style).

The Move protocol's proof machinery — light-client header streams plus
Merkle proofs over committed state — is reused here to *synchronize*
contract state across chains instead of migrating it: a contract on
chain ``B_i`` gets read-only **mirrors** on other chains, each updated
by verified :class:`~repro.replicate.protocol.ReplicaUpdate` bundles
with a staleness bound of ``p + state_root_lag`` source blocks
(``docs/REPLICATION.md``).

Layers: :class:`ReplicationLog` (source-side per-block delta capture),
:class:`ReplicaUpdate` (the verified sync step),
:class:`Mirror` (per-replica status machine),
:class:`ReplicationRelay` (one source→target sync pump),
:class:`ReplicationManager` (node-level placement, nearest-replica read
routing, move re-homing — host it with ``Node.attach_replication``).
"""

from repro.replicate.log import ReplicationLog
from repro.replicate.manager import ReplicationManager
from repro.replicate.mirror import HALTED, LIVE, SYNCING, TOMBSTONED, Mirror
from repro.replicate.protocol import ParsedContractLeaf, ReplicaUpdate, parse_contract_leaf
from repro.replicate.relay import ReplicationRelay

__all__ = [
    "ReplicationLog",
    "ReplicationManager",
    "ReplicationRelay",
    "ReplicaUpdate",
    "ParsedContractLeaf",
    "parse_contract_leaf",
    "Mirror",
    "SYNCING",
    "LIVE",
    "HALTED",
    "TOMBSTONED",
]
