"""Per-replica bookkeeping: sync position, status, applied proof.

A :class:`Mirror` is the relay's view of one read-only replica on one
target chain.  The replicated *state* itself lives in the target's
``WorldState`` (as a real, locked contract record flagged via
``register``/``apply_mirror``) so ordinary ``chain.view`` calls serve
it; this object tracks everything the sync protocol needs around that
record — the verified image it was built from, the source height it
reproduces, the header the proof was checked against (for reorg
detection on fork-aware stores), and the serving status.

Status machine::

    SYNCING ──verified update──▶ LIVE ◀──newer verified update──┐
       ▲                          │                             │
       │                          ├─ applied header reorged ──▶ HALTED
       │                          │
       └── re-home (new source) ──┴─ source moved away ──▶ TOMBSTONED

Only ``LIVE`` serves reads; every other status answers with the typed
:class:`~repro.errors.ReplicaUnavailable` — a replica fails
*unavailable*, never stale or orphaned.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.chain.block import BlockHeader
from repro.crypto.keys import Address

SYNCING = "syncing"
LIVE = "live"
HALTED = "halted"
TOMBSTONED = "tombstoned"


@dataclass
class Mirror:
    """One replica's sync state on one target chain."""

    contract: Address
    source_chain: int
    target_chain: int
    #: configured staleness bound in source blocks (p + state_root_lag)
    staleness_bound: int
    status: str = SYNCING
    #: source block height whose post-state the replica reproduces
    synced_height: int = -1
    #: header the last accepted update's proof was verified against
    applied_header: Optional[BlockHeader] = None
    #: the verified full image (the base for the next delta update)
    image: Dict[bytes, bytes] = field(default_factory=dict)
    updates_applied: int = 0
    full_syncs: int = 0
    #: why the mirror is halted/tombstoned (for operators and errors)
    reason: str = ""
    #: where the source said the contract went (tombstones only)
    moved_to: Optional[int] = None

    @property
    def available(self) -> bool:
        return self.status == LIVE

    def staleness(self, source_height: int) -> int:
        """Measured staleness in source blocks at source head
        ``source_height`` (how far behind the committed state a reader
        of this replica observes is)."""
        if self.synced_height < 0:
            return source_height + 1
        return max(0, source_height - self.synced_height)

    def mark_live(self, height: int, header: BlockHeader, image: Dict[bytes, bytes], full: bool) -> None:
        """Record a verified update: the replica now reproduces the
        source's committed state at ``height`` and may serve reads."""
        self.status = LIVE
        self.synced_height = height
        self.applied_header = header
        self.image = image
        self.updates_applied += 1
        if full:
            self.full_syncs += 1
        self.reason = ""
        self.moved_to = None

    def halt(self, reason: str) -> None:
        """Stop serving (reorg/integrity failure); a verified update
        on the canonical branch revives the mirror."""
        self.status = HALTED
        self.reason = reason

    def tombstone(self, reason: str, moved_to: Optional[int] = None) -> None:
        """Retire the mirror (source moved away, became active here,
        or the placement was dropped); forgets the synced image."""
        self.status = TOMBSTONED
        self.reason = reason
        self.moved_to = moved_to
        self.image = {}
        self.synced_height = -1
        self.applied_header = None
