"""The replica-update wire format and its verification rules.

A :class:`ReplicaUpdate` is the unit of the staleness-bounded sync
protocol (SmartSync-style): it brings a read-only mirror from the
source contract's committed post-state at block ``since_height`` to its
committed post-state at block ``state_height``, carrying

* either the **full storage image** at ``state_height`` (initial sync,
  or when the source's delta log no longer covers the window), or the
  **merged slot delta** written in ``(since_height, state_height]``
  (``b""`` marks a deleted slot);
* one **account membership proof** of the contract's leaf against the
  source's state root at ``state_height`` — the same ``{v} ↦ m`` proof
  a Move2 bundle carries, served from the same retained tree snapshots;
* the contract **code** (checked against the proven code hash).

Verification needs *no* trusted metadata: the proven 113-byte contract
leaf is parsed directly (:func:`parse_contract_leaf`), yielding the
balance, ``L_c``, move nonce, code hash and storage root the mirror
must reflect.  The verifier then rebuilds the canonical storage root
from the candidate image (current mirror image + delta, or the carried
full image) with the source chain's tree flavour and accepts only on an
exact match — so a torn or partial image can never be applied, and
deletions need no per-slot non-membership proofs.

The staleness bound falls out of ``VS``: the account proof's root is
trusted only when the header at ``proof_height`` is ``p``-confirmed by
the *target's* light client, so every accepted update reflects a
committed source state at most ``p + state_root_lag`` blocks behind the
newest source header the target has seen.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

from repro.chain.lightclient import LightClient
from repro.crypto.hashing import keccak
from repro.crypto.keys import Address
from repro.errors import ProofError, UnknownRootError
from repro.merkle.proof import MembershipProof
from repro.merkle.protocol import TreeFactory
from repro.statedb.state import compute_storage_root

#: byte layout of a contract leaf (see ``encode_contract_leaf``)
_LEAF_LEN = 1 + 32 + 8 + 8 + 32 + 32


@dataclass(frozen=True)
class ParsedContractLeaf:
    """The committed contract fields recovered from a proven leaf."""

    balance: int
    location: int
    move_nonce: int
    code_hash: bytes
    storage_root: bytes


def parse_contract_leaf(leaf: bytes) -> ParsedContractLeaf:
    """Decode the canonical contract-leaf bytes (inverse of
    ``encode_contract_leaf``); raises :class:`ProofError` on any other
    shape (an account leaf, a truncated blob)."""
    if len(leaf) != _LEAF_LEN or leaf[:1] != b"C":
        raise ProofError("proven leaf is not a contract leaf")
    return ParsedContractLeaf(
        balance=int.from_bytes(leaf[1:33], "big"),
        location=int.from_bytes(leaf[33:41], "big"),
        move_nonce=int.from_bytes(leaf[41:49], "big"),
        code_hash=leaf[49:81],
        storage_root=leaf[81:113],
    )


@dataclass(frozen=True)
class ReplicaUpdate:
    """One verifiable sync step for a read-only mirror."""

    source_chain: int
    contract: Address
    #: source block whose post-state this update reproduces
    state_height: int
    #: source header height whose ``state_root`` commits that post-state
    #: (``state_height + state_root_lag``)
    proof_height: int
    #: mirror's synced height this delta applies on top of (None = full)
    since_height: Optional[int]
    delta: Optional[Dict[bytes, bytes]]
    image: Optional[Dict[bytes, bytes]]
    code: bytes
    account_proof: MembershipProof

    @property
    def is_full(self) -> bool:
        return self.image is not None

    def size_bytes(self) -> int:
        """Serialized size (drives the ``replicate_update_bytes``
        metric and the bench's bandwidth column)."""
        payload = self.image if self.image is not None else self.delta or {}
        slots = sum(len(key) + len(value) for key, value in payload.items())
        return slots + len(self.code) + self.account_proof.size_bytes()

    def verify(
        self,
        light_client: LightClient,
        tree_factory: TreeFactory,
        base_image: Optional[Mapping[bytes, bytes]] = None,
    ) -> Tuple[ParsedContractLeaf, Dict[bytes, bytes]]:
        """Verify against the target's light client; return the parsed
        leaf and the full post-state image the mirror must adopt.

        Raises :class:`UnknownRootError` when ``VS`` fails (header
        unknown, not yet ``p``-confirmed, or reorged away) and
        :class:`ProofError` on any integrity mismatch.  ``base_image``
        is the mirror's current image, required for delta updates.
        """
        root = self.account_proof.computed_root()
        if not light_client.valid_state_root(self.source_chain, self.proof_height, root):
            raise UnknownRootError(
                f"VS failed for chain {self.source_chain} @ {self.proof_height}"
            )
        if self.account_proof.key != self.contract.raw:
            raise ProofError("account proof is for a different address")
        leaf = parse_contract_leaf(self.account_proof.value)
        if keccak(self.code) != leaf.code_hash:
            raise ProofError("carried code does not match the proven code hash")
        if self.image is not None:
            candidate = {k: v for k, v in self.image.items() if v}
        else:
            if base_image is None:
                raise ProofError("delta update without a base image")
            candidate = dict(base_image)
            for key, value in (self.delta or {}).items():
                if value:
                    candidate[key] = value
                else:
                    candidate.pop(key, None)
        if compute_storage_root(tree_factory, candidate) != leaf.storage_root:
            raise ProofError(
                "candidate storage does not reproduce the proven storage root"
            )
        return leaf, candidate
