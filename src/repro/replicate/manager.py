"""The node-level replication manager: placement, routing, re-homing.

One :class:`ReplicationManager` per :class:`~repro.node.Node` owns all
:class:`~repro.replicate.relay.ReplicationRelay` pumps (one per chain
pair that carries at least one mirror), answers read requests with
nearest-replica routing, and keeps mirror placement consistent with
the Move protocol:

* ``replicate(contract, source, targets)`` declares the placement;
  relays sync each mirror and keep it within the staleness bound;
* reads (:meth:`read`) route to the preferred chain's active copy or
  ``LIVE`` replica, with a typed :class:`ReplicaUnavailable` when the
  preferred replica is syncing/halted/tombstoned and fallback is off;
* when a replicated contract **moves** (Move1/Move2 to another served
  chain), its mirrors tombstone immediately (the relay's live ``L_c``
  check) and the manager *re-homes* them: once the contract is active
  on the new chain, fresh mirrors are registered under the new
  source→target relays, fully re-synced from verified proofs.

Per-contract read counters (windowed, on the simulated clock) feed the
rebalancer's replicate-vs-move decision arm — a read-dominated hot
contract is cheaper to replicate than to move.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.crypto.keys import Address
from repro.errors import ReplicaUnavailable, StateError
from repro.replicate.mirror import LIVE, TOMBSTONED, Mirror
from repro.replicate.relay import ReplicationRelay
from repro.telemetry import Telemetry

#: window (simulated seconds) for the read-rate signal
READ_RATE_WINDOW = 10.0


class ReplicationManager:
    """Owns the relays and the replica read path of one node."""

    def __init__(self, node, telemetry: Optional[Telemetry] = None):
        self.node = node
        self.telemetry = telemetry if telemetry is not None else node.telemetry
        self._relays: Dict[Tuple[int, int], ReplicationRelay] = {}
        #: contract -> chain currently treated as its source
        self._sources: Dict[Address, int] = {}
        #: contract -> declared replica placement (target chain ids)
        self._targets: Dict[Address, Set[int]] = {}
        self._started = False
        #: per-contract read timestamps inside the rate window
        self._read_times: Dict[Address, List[float]] = {}
        self.reads_by_contract: Dict[Address, int] = {}
        #: lifetime re-home count (assertable without a metrics registry)
        self.rehomes = 0
        metrics = self.telemetry.metrics
        self._m_mirrors = metrics.gauge("replicate_mirrors")
        self._m_unavailable = metrics.counter("replicate_read_unavailable_total")
        self._m_rehomes = metrics.counter("replicate_rehomes_total")
        self._m_read_counters: Dict[Tuple[int, str], object] = {}

    # ------------------------------------------------------------------
    # Lifecycle (hosted by Node.attach_replication)
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Start every relay and watch blocks for re-homing
        (idempotent)."""
        if self._started:
            return
        self._started = True
        for chain in self.node.chains.values():
            chain.subscribe(self._on_block)
        for relay in self._relays.values():
            relay.start()

    def stop(self) -> None:
        """Stop every relay and the block watcher (idempotent)."""
        if not self._started:
            return
        self._started = False
        for chain in self.node.chains.values():
            chain.unsubscribe(self._on_block)
        for relay in self._relays.values():
            relay.stop()

    def _on_block(self, _block, _receipts) -> None:
        self._retarget()

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------

    def replicate(
        self, contract: Address, source_chain: int, target_chains: Iterable[int]
    ) -> List[Mirror]:
        """Mirror ``contract`` (living on ``source_chain``) onto each of
        ``target_chains``.  Idempotent per target; returns the mirrors."""
        source = self.node.chain(source_chain)
        if source.state.contract(contract) is None:
            raise StateError(f"no contract at {contract} on chain {source_chain}")
        self._sources[contract] = source_chain
        wanted = self._targets.setdefault(contract, set())
        mirrors = []
        for target_id in target_chains:
            if target_id == source_chain:
                raise StateError("a contract cannot mirror onto its own chain")
            self.node.chain(target_id)  # raises UnknownChainError if unserved
            wanted.add(target_id)
            mirrors.append(self._relay(source_chain, target_id).add_contract(contract))
        self._update_mirror_gauge()
        return mirrors

    def drop(self, contract: Address, target_chain: Optional[int] = None) -> None:
        """Stop replicating ``contract`` everywhere (or on one chain)."""
        targets = self._targets.get(contract, set())
        victims = {target_chain} if target_chain is not None else set(targets)
        for (source_id, target_id), relay in self._relays.items():
            if target_id in victims:
                relay.remove_contract(contract)
        targets -= victims
        if not targets:
            self._targets.pop(contract, None)
            self._sources.pop(contract, None)
        self._update_mirror_gauge()

    def _relay(self, source_id: int, target_id: int) -> ReplicationRelay:
        relay = self._relays.get((source_id, target_id))
        if relay is None:
            relay = ReplicationRelay(
                self.node.chain(source_id),
                self.node.chain(target_id),
                telemetry=self.telemetry,
            )
            self._relays[(source_id, target_id)] = relay
            if self._started:
                relay.start()
        return relay

    def mirror(self, contract: Address, chain_id: int) -> Optional[Mirror]:
        """The contract's mirror on ``chain_id`` under its *current*
        source, or None."""
        source_id = self._sources.get(contract)
        if source_id is None:
            return None
        relay = self._relays.get((source_id, chain_id))
        if relay is None:
            return None
        return relay.mirrors.get(contract)

    def mirrors(self, contract: Address) -> Dict[int, Mirror]:
        """All of the contract's mirrors keyed by target chain."""
        source_id = self._sources.get(contract)
        out: Dict[int, Mirror] = {}
        for (src, target_id), relay in self._relays.items():
            if src != source_id:
                continue
            mirror = relay.mirrors.get(contract)
            if mirror is not None:
                out[target_id] = mirror
        return out

    def status(self, contract: Address) -> Dict[int, str]:
        """Per-target serving status (``live``/``syncing``/…)."""
        return {
            chain_id: mirror.status
            for chain_id, mirror in self.mirrors(contract).items()
        }

    def source_of(self, contract: Address) -> Optional[int]:
        """The chain currently feeding the contract's mirrors, if
        replicated."""
        return self._sources.get(contract)

    def _update_mirror_gauge(self) -> None:
        self._m_mirrors.set(
            sum(len(relay.mirrors) for relay in self._relays.values())
        )

    # ------------------------------------------------------------------
    # Read routing
    # ------------------------------------------------------------------

    def read(
        self,
        contract: Address,
        method: str,
        *args,
        prefer_chain: Optional[int] = None,
        fallback: bool = True,
    ):
        """Serve a read from the nearest usable copy.

        Preference order: the active copy on ``prefer_chain``, then a
        ``LIVE`` replica there, then (with ``fallback``) the active
        copy wherever it lives.  A preferred replica that is syncing,
        halted or tombstoned raises :class:`ReplicaUnavailable` when
        fallback is off — a replica fails unavailable, never stale.
        """
        if prefer_chain is not None:
            chain = self.node.chain(prefer_chain)
            record = chain.state.contract(contract)
            if (
                record is not None
                and not chain.state.is_mirror(contract)
                and record.location == chain.chain_id
            ):
                return self._serve(chain, contract, method, args, kind="primary")
            mirror = self.mirror(contract, prefer_chain)
            if mirror is not None and mirror.available:
                return self._serve(chain, contract, method, args, kind="replica")
            self._m_unavailable.inc()
            if not fallback:
                if mirror is None:
                    raise ReplicaUnavailable(
                        f"no replica of {contract} on chain {prefer_chain}"
                    )
                raise ReplicaUnavailable(
                    f"replica of {contract} on chain {prefer_chain} is "
                    f"{mirror.status}"
                    + (f": {mirror.reason}" if mirror.reason else "")
                )
        home = self._active_chain(contract)
        if home is None:
            raise ReplicaUnavailable(
                f"no active copy of {contract} on any served chain"
            )
        return self._serve(home, contract, method, args, kind="primary")

    def _serve(self, chain, contract: Address, method: str, args, kind: str):
        key = (chain.chain_id, kind)
        counter = self._m_read_counters.get(key)
        if counter is None:
            counter = self.telemetry.metrics.counter(
                "replicate_reads_total", chain=chain.chain_id, kind=kind
            )
            self._m_read_counters[key] = counter
        counter.inc()
        self._record_read(contract)
        return chain.view(contract, method, *args)

    def _active_chain(self, contract: Address):
        source_id = self._sources.get(contract)
        if source_id is not None:
            chain = self.node.chains.get(source_id)
            if chain is not None and chain.location_of(contract) == chain.chain_id:
                return chain
        for chain in self.node.chains.values():
            if chain.location_of(contract) == chain.chain_id:
                return chain
        return None

    # ------------------------------------------------------------------
    # Read-rate signal (for the rebalancer's replicate arm)
    # ------------------------------------------------------------------

    def _record_read(self, contract: Address) -> None:
        now = self.node.sim.now
        times = self._read_times.setdefault(contract, [])
        times.append(now)
        self.reads_by_contract[contract] = (
            self.reads_by_contract.get(contract, 0) + 1
        )
        # Compact in place: everything inside the window survives.
        cutoff = now - READ_RATE_WINDOW
        if times and times[0] < cutoff:
            self._read_times[contract] = [t for t in times if t >= cutoff]

    def read_rate(self, contract: Address) -> float:
        """Reads per simulated second over the trailing window."""
        now = self.node.sim.now
        cutoff = now - READ_RATE_WINDOW
        times = self._read_times.get(contract)
        if not times:
            return 0.0
        live = [t for t in times if t >= cutoff]
        self._read_times[contract] = live
        return len(live) / READ_RATE_WINDOW

    def read_rates(self) -> Dict[Address, float]:
        """Windowed read rates for every read contract — the provider
        a :class:`~repro.rebalance.signals.SignalPlane` samples for the
        policy's replicate-vs-move arm."""
        return {
            contract: self.read_rate(contract)
            for contract in list(self._read_times)
        }

    # ------------------------------------------------------------------
    # Re-homing after moves
    # ------------------------------------------------------------------

    def _retarget(self) -> None:
        """Re-home mirrors whose contract completed a move to another
        served chain (runs after every block)."""
        for contract, source_id in list(self._sources.items()):
            source = self.node.chains.get(source_id)
            if source is None:
                continue
            location = source.location_of(contract)
            if location is None or location == source_id:
                continue
            new_chain = self.node.chains.get(location)
            if new_chain is None:
                continue  # moved off this node: mirrors stay tombstoned
            if new_chain.location_of(contract) != location:
                continue  # Move2 not landed yet: mirrors stay unavailable
            self._rehome(contract, location)

    def _rehome(self, contract: Address, new_source: int) -> None:
        old_source = self._sources[contract]
        targets = self._targets.get(contract, set())
        for target_id in set(targets):
            relay = self._relays.get((old_source, target_id))
            if relay is not None:
                relay.remove_contract(contract)
        self._sources[contract] = new_source
        for target_id in sorted(targets):
            if target_id == new_source:
                continue  # the active copy serves this chain directly
            self._relay(new_source, target_id).add_contract(contract)
        self.rehomes += 1
        self._m_rehomes.inc()
        self._update_mirror_gauge()
