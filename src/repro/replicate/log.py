"""Source-side capture of per-block storage deltas.

``Chain.prove_contract_at`` refuses to serve a proof once the live
record diverges from the requested historical root — correct for Move2
(the contract is locked while the proof is in flight) but useless for
replicating a *hot* contract that keeps mutating.  The
:class:`ReplicationLog` closes that gap: the chain records, for each
replicated contract, exactly which slots each block wrote (captured
from the world state's dirty-slot sets just before commit), so a
replica update for any retained height is a cheap dictionary merge
instead of a full-state walk — and the account proof for that height
comes from the tree snapshots the chain already retains for Move2.

The log holds a **base image** (the full storage dict as of
``base_height``) plus one delta per subsequent block.  Deltas older
than the chain's snapshot retention horizon are folded into the base —
a height whose snapshot is gone can't be proven anyway, so nothing is
lost by forgetting how to reach it.  Wholesale storage replacement
(Move2 recreation, GC wipes) rebases the log on the full post-block
image, forcing the next update to be a full resync.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Mapping, Optional

from repro.errors import ProofError


class ReplicationLog:
    """Delta history of one contract's storage, one entry per block."""

    def __init__(self, base_height: int, base_image: Mapping[bytes, bytes]):
        self.base_height = base_height
        self._base: Dict[bytes, bytes] = {
            key: value for key, value in base_image.items() if value
        }
        #: height -> {slot: value}, ``b""`` marking a delete; insertion
        #: order is ascending height (produce_block appends every block)
        self._deltas: "OrderedDict[int, Dict[bytes, bytes]]" = OrderedDict()
        self.rebases = 0

    @property
    def head_height(self) -> int:
        """Newest height the log can reproduce."""
        return next(reversed(self._deltas)) if self._deltas else self.base_height

    def append(self, height: int, changes: Mapping[bytes, bytes]) -> None:
        """Record one block's slot writes (may be empty)."""
        self._deltas[height] = dict(changes)

    def rebase(self, height: int, image: Mapping[bytes, bytes]) -> None:
        """Reset to a full image (after a wholesale storage swap)."""
        self._base = {key: value for key, value in image.items() if value}
        self.base_height = height
        self._deltas.clear()
        self.rebases += 1

    def trim(self, horizon: int) -> None:
        """Fold deltas at heights ``<= horizon`` into the base image."""
        while self._deltas:
            height = next(iter(self._deltas))
            if height > horizon:
                break
            self._fold(self._base, self._deltas.pop(height))
            self.base_height = height

    def delta_between(
        self, since: int, upto: int
    ) -> Optional[Dict[bytes, bytes]]:
        """Merged slot changes over ``(since, upto]``, or ``None`` when
        the window is not fully covered by retained deltas (the caller
        falls back to a full-image update)."""
        if since < self.base_height or upto < since or upto > self.head_height:
            return None
        merged: Dict[bytes, bytes] = {}
        for height in range(since + 1, upto + 1):
            delta = self._deltas.get(height)
            if delta is None:
                return None
            merged.update(delta)
        return merged

    def image_at(self, upto: int) -> Dict[bytes, bytes]:
        """Full storage image as of the post-state of block ``upto``."""
        if upto < self.base_height or upto > self.head_height:
            raise ProofError(
                f"replication log covers [{self.base_height}, "
                f"{self.head_height}], not {upto}"
            )
        image = dict(self._base)
        for height, delta in self._deltas.items():
            if height > upto:
                break
            self._fold(image, delta)
        return image

    @staticmethod
    def _fold(image: Dict[bytes, bytes], delta: Mapping[bytes, bytes]) -> None:
        for key, value in delta.items():
            if value:
                image[key] = value
            else:
                image.pop(key, None)
