"""Gas schedule and metering.

Costs follow the Yellow Paper classes the paper relies on in Section VI
("a sum between two integers costs 3 gas, while creating a new smart
contract costs 32000 gas") and Section VIII's observations:

* storage writes dominate state transfer (Fig. 9: Store 100 ≈ 2 Mgas,
  i.e. ~100 × ``SSTORE_SET``);
* on Ethereum-flavoured chains, recreating a contract pays a per-byte
  **code deposit**, which accounts for ~70 % of the SCoin /
  ScalableKitties move cost; Burrow charges no per-byte code deposit —
  expressed here as a per-chain :class:`GasSchedule` flag.

The :class:`GasMeter` tracks consumption per category so the Fig. 9
harness can split a transaction's cost into move1/create/move2/complete
components without re-deriving them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.errors import OutOfGas


@dataclass(frozen=True)
class GasSchedule:
    """Per-chain gas cost table (Yellow-Paper-aligned subset)."""

    tx_base: int = 21_000
    sstore_set: int = 20_000      # write a fresh (zero -> nonzero) slot
    sstore_update: int = 5_000    # overwrite an existing slot
    sstore_clear: int = 5_000     # zero out a slot (no refund modelled)
    sload: int = 200
    create: int = 32_000          # CREATE/contract instantiation
    code_deposit_per_byte: int = 200  # Ethereum flavour; 0 on Burrow flavour
    call: int = 700
    balance: int = 400
    verylow: int = 3              # ADD, SUB, comparison, PUSH, DUP, SWAP...
    low: int = 5                  # MUL, DIV, MOD
    base: int = 2                 # POP, PC, ADDRESS, CALLER...
    jumpdest: int = 1
    high: int = 10                # JUMPI
    mid: int = 8                  # JUMP
    sha3_base: int = 30
    sha3_per_word: int = 6
    log_base: int = 375
    log_per_byte: int = 8
    memory_per_word: int = 3
    tx_data_per_byte: int = 68
    move_op: int = 5_000          # OP_MOVE: storage-update-class write to L_c
    proof_verify_base: int = 100  # Move2: per-proof fixed verification cost
    proof_verify_per_word: int = 6  # Move2: per 32-byte word of proof data
    #: Section VIII notes "it is possible to reduce significantly the
    #: Ethereum contract creation costs if the contract code is already
    #: in the blockchain" — this flag enables that optimization: the
    #: per-byte deposit is skipped when identical code is on-chain.
    #: Off by default (the paper's systems charge every creation).
    code_deposit_dedup: bool = False

    def code_deposit(self, code_size: int) -> int:
        """Gas for storing ``code_size`` bytes of contract code."""
        return self.code_deposit_per_byte * code_size

    def sha3(self, data_size: int) -> int:
        """Gas for hashing ``data_size`` bytes."""
        return self.sha3_base + self.sha3_per_word * _words(data_size)

    def proof_verification(self, proof_size: int) -> int:
        """Gas charged by Move2 to verify a Merkle proof of this size."""
        return self.proof_verify_base + self.proof_verify_per_word * _words(proof_size)

    def log(self, data_size: int) -> int:
        """Gas for emitting a log with ``data_size`` bytes of data."""
        return self.log_base + self.log_per_byte * data_size


def _words(size_bytes: int) -> int:
    return (size_bytes + 31) // 32


#: Ethereum-flavoured schedule: full code deposit charged per byte.
ETHEREUM_SCHEDULE = GasSchedule()

#: Burrow-flavoured schedule: identical except no per-byte code deposit
#: (paper Section VIII: "in Burrow no gas is paid per byte of code").
BURROW_SCHEDULE = GasSchedule(code_deposit_per_byte=0)


class GasMeter:
    """Tracks gas for one transaction, split by category.

    ``limit=None`` means unmetered (used by read-only queries and by
    the experiment harness when gas is recorded but never binding).
    """

    def __init__(self, limit: Optional[int] = None, schedule: GasSchedule = ETHEREUM_SCHEDULE):
        self.limit = limit
        self.schedule = schedule
        self.used = 0
        self.by_category: Dict[str, int] = {}

    def charge(self, amount: int, category: str = "execution") -> None:
        """Consume ``amount`` gas; raises :class:`OutOfGas` past the limit."""
        if amount < 0:
            raise ValueError("gas amounts are non-negative")
        self.used += amount
        self.by_category[category] = self.by_category.get(category, 0) + amount
        if self.limit is not None and self.used > self.limit:
            raise OutOfGas(f"gas limit {self.limit} exceeded (used {self.used})")

    @property
    def remaining(self) -> Optional[int]:
        if self.limit is None:
            return None
        return max(self.limit - self.used, 0)

    def snapshot(self) -> int:
        """Current usage — subtract two snapshots to meter a phase."""
        return self.used
