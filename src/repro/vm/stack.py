"""The VM's 256-bit word stack (max depth 1024, like the EVM)."""

from __future__ import annotations

from typing import List

from repro.errors import StackOverflow, StackUnderflow

WORD_BITS = 256
WORD_MASK = (1 << WORD_BITS) - 1
MAX_DEPTH = 1024


class Stack:
    """LIFO stack of unsigned 256-bit integers."""

    def __init__(self) -> None:
        self._items: List[int] = []

    def push(self, value: int) -> None:
        """Push a value (masked to 256 bits); raises on overflow."""
        if len(self._items) >= MAX_DEPTH:
            raise StackOverflow(f"stack depth limit {MAX_DEPTH} exceeded")
        self._items.append(value & WORD_MASK)

    def pop(self) -> int:
        """Pop the top word; raises :class:`StackUnderflow` if empty."""
        if not self._items:
            raise StackUnderflow("pop from empty stack")
        return self._items.pop()

    def peek(self, depth: int = 0) -> int:
        """Read the item ``depth`` positions below the top."""
        if depth >= len(self._items):
            raise StackUnderflow(f"peek depth {depth} beyond stack size")
        return self._items[-1 - depth]

    def dup(self, n: int) -> None:
        """DUPn: duplicate the n-th item (1-based) onto the top."""
        self.push(self.peek(n - 1))

    def swap(self, n: int) -> None:
        """SWAPn: exchange the top with the (n+1)-th item (1-based n)."""
        if n >= len(self._items):
            raise StackUnderflow(f"swap depth {n} beyond stack size")
        self._items[-1], self._items[-1 - n] = self._items[-1 - n], self._items[-1]

    def __len__(self) -> int:
        return len(self._items)
