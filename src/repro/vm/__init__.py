"""EVM-like execution substrate.

Both blockchains modified by the paper (go-ethereum and Hyperledger
Burrow) run the Ethereum Virtual Machine; assumption (b) of the Move
protocol is that interoperating chains share this execution environment.
This package provides:

* a gas schedule modelled on the Yellow Paper cost classes
  (:mod:`repro.vm.gas`) — the quantities behind the paper's Fig. 9;
* a stack-based interpreter (:mod:`repro.vm.machine`) over an
  EVM-flavoured instruction set **extended with the paper's new
  ``OP_MOVE`` opcode** (:mod:`repro.vm.opcodes`), which writes the
  contract's location field ``L_c``;
* an assembler from mnemonics to bytecode (:mod:`repro.vm.assembler`)
  used by tests and the bytecode-level examples.

Application contracts (SCoin, ScalableKitties, …) are written against
the high-level runtime in :mod:`repro.runtime`, which charges this same
gas schedule — the analogue of writing Solidity instead of raw bytecode.
"""

from repro.vm.assembler import assemble, disassemble
from repro.vm.gas import GasMeter, GasSchedule
from repro.vm.machine import ExecutionResult, Machine, MachineContext, MemoryContext
from repro.vm.opcodes import Op

__all__ = [
    "GasMeter",
    "GasSchedule",
    "Machine",
    "MachineContext",
    "MemoryContext",
    "ExecutionResult",
    "Op",
    "assemble",
    "disassemble",
]
