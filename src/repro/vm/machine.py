"""The bytecode interpreter.

The :class:`Machine` executes EVM-flavoured bytecode against a
:class:`MachineContext` — the boundary through which storage, balance,
environment and the Move protocol's location field are reached.  The
chain's state database adapts itself to this protocol; the in-memory
:class:`MemoryContext` serves unit tests and standalone experiments.

``OP_MOVE`` semantics (paper Section III-C): pop the target blockchain
identifier and hand it to ``context.move_to(target)``, which assigns
``L_c``.  Once ``L_c`` names another chain, the surrounding execution
engine aborts any transaction that would mutate the contract.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Protocol, Set, Tuple

from repro.crypto.hashing import keccak
from repro.errors import InvalidJump, InvalidOpcode, Revert
from repro.vm.gas import GasMeter, GasSchedule, _words
from repro.vm.memory import Memory
from repro.vm.opcodes import Op, is_dup, is_push, is_swap, push_size
from repro.vm.stack import WORD_MASK, Stack

_SIGN_BIT = 1 << 255


def _signed(word: int) -> int:
    """Interpret a 256-bit word as two's-complement."""
    return word - (1 << 256) if word & _SIGN_BIT else word



class MachineContext(Protocol):
    """Environment the VM executes within."""

    address: int        # executing contract's address as an int
    caller: int         # msg.sender
    callvalue: int      # msg.value
    chain_id: int       # identifier of the hosting blockchain
    block_number: int
    timestamp: int

    def storage_get(self, key: int) -> int:
        """Read a 256-bit storage slot (0 when unset)."""
        ...

    def storage_set(self, key: int, value: int) -> None:
        """Write a 256-bit storage slot (0 deletes)."""
        ...

    def balance_of(self, address: int) -> int:
        """Native balance of an address (BALANCE opcode)."""
        ...

    def move_to(self, target_chain: int) -> None:
        """Assign the executing contract's ``L_c`` (OP_MOVE)."""

    def location(self) -> int:
        """Current ``L_c`` of the executing contract."""

    def move_nonce(self) -> int:
        """Monotonic move counter (replay guard, paper Fig. 2)."""

    def emit_log(self, topics: List[int], data: bytes) -> None:
        """Record a LOG event."""
        ...


@dataclass
class MemoryContext:
    """Self-contained context for unit tests and bytecode demos."""

    address: int = 0xC0FFEE
    caller: int = 0xCA11E4
    callvalue: int = 0
    chain_id: int = 1
    block_number: int = 1
    timestamp: int = 0
    storage: Dict[int, int] = field(default_factory=dict)
    balances: Dict[int, int] = field(default_factory=dict)
    _location: Optional[int] = None
    _move_nonce: int = 0
    logs: List[Tuple[List[int], bytes]] = field(default_factory=list)

    def storage_get(self, key: int) -> int:
        """Dict-backed slot read."""
        return self.storage.get(key, 0)

    def storage_set(self, key: int, value: int) -> None:
        """Dict-backed slot write (0 deletes)."""
        if value == 0:
            self.storage.pop(key, None)
        else:
            self.storage[key] = value

    def balance_of(self, address: int) -> int:
        """Dict-backed balance lookup."""
        return self.balances.get(address, 0)

    def move_to(self, target_chain: int) -> None:
        """Record the OP_MOVE target as the new location."""
        self._location = target_chain

    def location(self) -> int:
        """Current L_c (the home chain until a move happens)."""
        return self._location if self._location is not None else self.chain_id

    def move_nonce(self) -> int:
        """The simulated move counter."""
        return self._move_nonce

    def emit_log(self, topics: List[int], data: bytes) -> None:
        """Append the log entry to the in-memory list."""
        self.logs.append((topics, data))


@dataclass
class ExecutionResult:
    """Outcome of one bytecode run."""

    success: bool
    return_data: bytes
    gas_used: int
    error: Optional[str] = None


class Machine:
    """Executes one code blob to completion (no nested CALL at the
    bytecode level — cross-contract calls happen in the high-level
    runtime, as the paper's apps are Solidity-level)."""

    def __init__(self, schedule: GasSchedule):
        self.schedule = schedule

    def _jump_destinations(self, code: bytes) -> Set[int]:
        dests: Set[int] = set()
        pc = 0
        while pc < len(code):
            op = code[pc]
            if op == Op.JUMPDEST:
                dests.add(pc)
            pc += 1 + (push_size(op) if is_push(op) else 0)
        return dests

    def execute(
        self,
        code: bytes,
        context: MachineContext,
        meter: Optional[GasMeter] = None,
        category: str = "execution",
        calldata: bytes = b"",
    ) -> ExecutionResult:
        """Run ``code``; storage effects go through ``context``.

        A :class:`~repro.errors.Revert` or VM fault is reported in the
        result, not raised — the caller decides whether to roll back
        state (the chain's execution engine journals around this call).
        """
        meter = meter if meter is not None else GasMeter(schedule=self.schedule)
        gas_before = meter.used
        try:
            data = self._run(code, context, meter, category, calldata)
            return ExecutionResult(True, data, meter.used - gas_before)
        except Revert as exc:
            return ExecutionResult(False, b"", meter.used - gas_before, error=str(exc))
        except (InvalidJump, InvalidOpcode) as exc:
            return ExecutionResult(False, b"", meter.used - gas_before, error=str(exc))

    def _run(
        self, code: bytes, ctx: MachineContext, meter: GasMeter, cat: str,
        calldata: bytes = b"",
    ) -> bytes:
        sch = self.schedule
        stack = Stack()
        memory = Memory()
        dests = self._jump_destinations(code)
        pc = 0

        def charge_mem(grown_words: int) -> None:
            if grown_words:
                meter.charge(grown_words * sch.memory_per_word, cat)

        while pc < len(code):
            op = code[pc]
            pc += 1

            if is_push(op):
                size = push_size(op)
                meter.charge(sch.verylow, cat)
                stack.push(int.from_bytes(code[pc:pc + size], "big"))
                pc += size
            elif is_dup(op):
                meter.charge(sch.verylow, cat)
                stack.dup(op - Op.DUP1 + 1)
            elif is_swap(op):
                meter.charge(sch.verylow, cat)
                stack.swap(op - Op.SWAP1 + 1)
            elif op == Op.STOP:
                return b""
            elif op == Op.ADD:
                meter.charge(sch.verylow, cat)
                stack.push(stack.pop() + stack.pop())
            elif op == Op.MUL:
                meter.charge(sch.low, cat)
                stack.push(stack.pop() * stack.pop())
            elif op == Op.SUB:
                meter.charge(sch.verylow, cat)
                a, b = stack.pop(), stack.pop()
                stack.push(a - b)
            elif op == Op.DIV:
                meter.charge(sch.low, cat)
                a, b = stack.pop(), stack.pop()
                stack.push(0 if b == 0 else a // b)
            elif op == Op.MOD:
                meter.charge(sch.low, cat)
                a, b = stack.pop(), stack.pop()
                stack.push(0 if b == 0 else a % b)
            elif op == Op.SDIV:
                meter.charge(sch.low, cat)
                a, b = _signed(stack.pop()), _signed(stack.pop())
                # EVM truncates toward zero.
                stack.push(0 if b == 0 else abs(a) // abs(b) * (1 if (a < 0) == (b < 0) else -1))
            elif op == Op.SMOD:
                meter.charge(sch.low, cat)
                a, b = _signed(stack.pop()), _signed(stack.pop())
                # Result takes the dividend's sign (EVM semantics).
                stack.push(0 if b == 0 else (abs(a) % abs(b)) * (1 if a >= 0 else -1))
            elif op == Op.ADDMOD:
                meter.charge(sch.mid, cat)
                a, b, n = stack.pop(), stack.pop(), stack.pop()
                stack.push(0 if n == 0 else (a + b) % n)
            elif op == Op.MULMOD:
                meter.charge(sch.mid, cat)
                a, b, n = stack.pop(), stack.pop(), stack.pop()
                stack.push(0 if n == 0 else (a * b) % n)
            elif op == Op.EXP:
                meter.charge(sch.high, cat)
                a, b = stack.pop(), stack.pop()
                stack.push(pow(a, b, 1 << 256))
            elif op == Op.SIGNEXTEND:
                meter.charge(sch.low, cat)
                size, value = stack.pop(), stack.pop()
                if size < 31:
                    sign_bit = 1 << (8 * (size + 1) - 1)
                    if value & sign_bit:
                        value |= WORD_MASK ^ ((sign_bit << 1) - 1)
                    else:
                        value &= (sign_bit << 1) - 1
                stack.push(value)
            elif op == Op.LT:
                meter.charge(sch.verylow, cat)
                a, b = stack.pop(), stack.pop()
                stack.push(1 if a < b else 0)
            elif op == Op.GT:
                meter.charge(sch.verylow, cat)
                a, b = stack.pop(), stack.pop()
                stack.push(1 if a > b else 0)
            elif op == Op.EQ:
                meter.charge(sch.verylow, cat)
                stack.push(1 if stack.pop() == stack.pop() else 0)
            elif op == Op.ISZERO:
                meter.charge(sch.verylow, cat)
                stack.push(1 if stack.pop() == 0 else 0)
            elif op == Op.AND:
                meter.charge(sch.verylow, cat)
                stack.push(stack.pop() & stack.pop())
            elif op == Op.OR:
                meter.charge(sch.verylow, cat)
                stack.push(stack.pop() | stack.pop())
            elif op == Op.XOR:
                meter.charge(sch.verylow, cat)
                stack.push(stack.pop() ^ stack.pop())
            elif op == Op.SLT:
                meter.charge(sch.verylow, cat)
                a, b = _signed(stack.pop()), _signed(stack.pop())
                stack.push(1 if a < b else 0)
            elif op == Op.SGT:
                meter.charge(sch.verylow, cat)
                a, b = _signed(stack.pop()), _signed(stack.pop())
                stack.push(1 if a > b else 0)
            elif op == Op.NOT:
                meter.charge(sch.verylow, cat)
                stack.push(~stack.pop() & WORD_MASK)
            elif op == Op.BYTE:
                meter.charge(sch.verylow, cat)
                index, value = stack.pop(), stack.pop()
                stack.push((value >> (8 * (31 - index))) & 0xFF if index < 32 else 0)
            elif op == Op.SHL:
                meter.charge(sch.verylow, cat)
                shift, value = stack.pop(), stack.pop()
                stack.push(0 if shift >= 256 else (value << shift) & WORD_MASK)
            elif op == Op.SHR:
                meter.charge(sch.verylow, cat)
                shift, value = stack.pop(), stack.pop()
                stack.push(0 if shift >= 256 else value >> shift)
            elif op == Op.SAR:
                meter.charge(sch.verylow, cat)
                shift, value = stack.pop(), _signed(stack.pop())
                if shift >= 256:
                    stack.push(WORD_MASK if value < 0 else 0)
                else:
                    stack.push((value >> shift) & WORD_MASK)
            elif op == Op.SHA3:
                offset, size = stack.pop(), stack.pop()
                meter.charge(sch.sha3(size), cat)
                digest = keccak(memory.load(offset, size))
                stack.push(int.from_bytes(digest, "big"))
            elif op == Op.ADDRESS:
                meter.charge(sch.base, cat)
                stack.push(ctx.address)
            elif op == Op.BALANCE:
                meter.charge(sch.balance, cat)
                stack.push(ctx.balance_of(stack.pop()))
            elif op == Op.CALLER:
                meter.charge(sch.base, cat)
                stack.push(ctx.caller)
            elif op == Op.CALLVALUE:
                meter.charge(sch.base, cat)
                stack.push(ctx.callvalue)
            elif op == Op.CALLDATALOAD:
                meter.charge(sch.verylow, cat)
                offset = stack.pop()
                chunk = calldata[offset:offset + 32]
                stack.push(int.from_bytes(chunk.ljust(32, b"\x00"), "big"))
            elif op == Op.CALLDATASIZE:
                meter.charge(sch.base, cat)
                stack.push(len(calldata))
            elif op == Op.CALLDATACOPY:
                dest, offset, size = stack.pop(), stack.pop(), stack.pop()
                meter.charge(sch.verylow + sch.memory_per_word * _words(size), cat)
                chunk = calldata[offset:offset + size].ljust(size, b"\x00")
                charge_mem(memory.store(dest, chunk))
            elif op == Op.CHAINID:
                meter.charge(sch.base, cat)
                stack.push(ctx.chain_id)
            elif op == Op.NUMBER:
                meter.charge(sch.base, cat)
                stack.push(ctx.block_number)
            elif op == Op.TIMESTAMP:
                meter.charge(sch.base, cat)
                stack.push(ctx.timestamp)
            elif op == Op.POP:
                meter.charge(sch.base, cat)
                stack.pop()
            elif op == Op.MLOAD:
                meter.charge(sch.verylow, cat)
                offset = stack.pop()
                stack.push(memory.load_word(offset))
            elif op == Op.MSTORE:
                meter.charge(sch.verylow, cat)
                offset, value = stack.pop(), stack.pop()
                charge_mem(memory.store_word(offset, value))
            elif op == Op.MSTORE8:
                meter.charge(sch.verylow, cat)
                offset, value = stack.pop(), stack.pop()
                charge_mem(memory.store(offset, bytes([value & 0xFF])))
            elif op == Op.MSIZE:
                meter.charge(sch.base, cat)
                stack.push(len(memory))
            elif op == Op.SLOAD:
                meter.charge(sch.sload, cat)
                stack.push(ctx.storage_get(stack.pop()))
            elif op == Op.SSTORE:
                key, value = stack.pop(), stack.pop()
                current = ctx.storage_get(key)
                if current == 0 and value != 0:
                    meter.charge(sch.sstore_set, cat)
                elif value == 0 and current != 0:
                    meter.charge(sch.sstore_clear, cat)
                else:
                    meter.charge(sch.sstore_update, cat)
                ctx.storage_set(key, value)
            elif op == Op.JUMP:
                meter.charge(sch.mid, cat)
                target = stack.pop()
                if target not in dests:
                    raise InvalidJump(f"jump to non-JUMPDEST {target}")
                pc = target
            elif op == Op.JUMPI:
                meter.charge(sch.high, cat)
                target, condition = stack.pop(), stack.pop()
                if condition != 0:
                    if target not in dests:
                        raise InvalidJump(f"jump to non-JUMPDEST {target}")
                    pc = target
            elif op == Op.PC:
                meter.charge(sch.base, cat)
                stack.push(pc - 1)
            elif op == Op.JUMPDEST:
                meter.charge(sch.jumpdest, cat)
            elif op == Op.LOG0:
                offset, size = stack.pop(), stack.pop()
                meter.charge(sch.log(size), cat)
                ctx.emit_log([], memory.load(offset, size))
            elif op == Op.MOVE:
                # The paper's new opcode: assign L_c := target chain.
                meter.charge(sch.move_op, cat)
                ctx.move_to(stack.pop())
            elif op == Op.MOVENONCE:
                meter.charge(sch.base, cat)
                stack.push(ctx.move_nonce())
            elif op == Op.LOCATION:
                meter.charge(sch.base, cat)
                stack.push(ctx.location())
            elif op == Op.RETURN:
                offset, size = stack.pop(), stack.pop()
                return memory.load(offset, size)
            elif op == Op.REVERT:
                offset, size = stack.pop(), stack.pop()
                raise Revert(memory.load(offset, size).decode("utf-8", "replace"))
            else:
                raise InvalidOpcode(f"undefined opcode 0x{op:02x} at pc {pc - 1}")
        return b""
