"""Two-way assembler between mnemonics and bytecode.

Assembly syntax, one instruction per line::

    PUSH1 0x05        ; immediates in hex or decimal
    PUSH2 1000
    ADD
    label:            ; labels become JUMPDEST positions
    PUSH @label       ; @label pushes a label's byte offset (as PUSH2)
    JUMP
    ; comments start with ';' or '#'

Used by the VM unit tests and the bytecode-level example; applications
use the high-level runtime instead.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.errors import AssemblerError
from repro.vm.opcodes import MNEMONICS, REVERSE_MNEMONICS, Op, is_push, push_size


def _parse_int(token: str) -> int:
    try:
        return int(token, 0)
    except ValueError as exc:
        raise AssemblerError(f"bad immediate {token!r}") from exc


def _tokenize(source: str) -> List[List[str]]:
    lines: List[List[str]] = []
    for raw in source.splitlines():
        line = raw.split(";")[0].split("#")[0].strip()
        if line:
            lines.append(line.split())
    return lines


def assemble(source: str) -> bytes:
    """Assemble mnemonic source into bytecode."""
    lines = _tokenize(source)

    # First pass: compute label offsets.  A label occupies one byte
    # (its JUMPDEST); @label references assemble to PUSH2 <offset>.
    labels: Dict[str, int] = {}
    offset = 0
    for tokens in lines:
        head = tokens[0]
        if head.endswith(":"):
            label = head[:-1]
            if label in labels:
                raise AssemblerError(f"duplicate label {label!r}")
            labels[label] = offset
            offset += 1  # JUMPDEST byte
            continue
        name = head.upper()
        if len(tokens) > 1 and tokens[1].startswith("@"):
            # `PUSH @label` (any PUSH alias) assembles to PUSH2 <offset>.
            if name != "PUSH" and name not in MNEMONICS:
                raise AssemblerError(f"unknown mnemonic {head!r}")
            offset += 3
            continue
        if name not in MNEMONICS:
            raise AssemblerError(f"unknown mnemonic {head!r}")
        code = MNEMONICS[name]
        if is_push(code):
            offset += 1 + push_size(code)
        else:
            offset += 1

    # Second pass: emit bytes.
    out = bytearray()
    for tokens in lines:
        head = tokens[0]
        if head.endswith(":"):
            out.append(int(Op.JUMPDEST))
            continue
        name = head.upper()
        if len(tokens) > 1 and tokens[1].startswith("@"):
            label = tokens[1][1:]
            if label not in labels:
                raise AssemblerError(f"unknown label {label!r}")
            out.append(int(Op.PUSH1) + 1)  # PUSH2
            out.extend(labels[label].to_bytes(2, "big"))
            continue
        code = MNEMONICS[name]
        if is_push(code):
            if len(tokens) != 2:
                raise AssemblerError(f"{name} needs exactly one immediate")
            size = push_size(code)
            value = _parse_int(tokens[1])
            if value >= 1 << (8 * size):
                raise AssemblerError(f"immediate {tokens[1]} overflows {name}")
            out.append(code)
            out.extend(value.to_bytes(size, "big"))
            continue
        if len(tokens) != 1:
            raise AssemblerError(f"{name} takes no operand")
        out.append(code)
    return bytes(out)


def disassemble(code: bytes) -> List[Tuple[int, str]]:
    """Decode bytecode into ``(offset, text)`` rows."""
    rows: List[Tuple[int, str]] = []
    pc = 0
    while pc < len(code):
        op = code[pc]
        if is_push(op):
            size = push_size(op)
            immediate = code[pc + 1:pc + 1 + size]
            rows.append((pc, f"PUSH{size} 0x{immediate.hex() or '00'}"))
            pc += 1 + size
            continue
        name = REVERSE_MNEMONICS.get(op, f"INVALID(0x{op:02x})")
        rows.append((pc, name))
        pc += 1
    return rows
