"""Byte-addressed VM memory, growing in 32-byte words.

Growth is charged by the interpreter via the schedule's
``memory_per_word`` cost.
"""

from __future__ import annotations


class Memory:
    """A flat, zero-initialized, word-expanding byte array."""

    def __init__(self) -> None:
        self._data = bytearray()

    def _grow(self, size: int) -> int:
        """Expand to cover ``size`` bytes; returns words newly allocated."""
        if size <= len(self._data):
            return 0
        new_words = (size + 31) // 32
        old_words = len(self._data) // 32
        self._data.extend(b"\x00" * (new_words * 32 - len(self._data)))
        return new_words - old_words

    def store(self, offset: int, value: bytes) -> int:
        """Write bytes at ``offset``; returns words newly allocated."""
        grown = self._grow(offset + len(value))
        self._data[offset:offset + len(value)] = value
        return grown

    def store_word(self, offset: int, value: int) -> int:
        """Write one 32-byte big-endian word; returns words allocated."""
        return self.store(offset, value.to_bytes(32, "big"))

    def load(self, offset: int, size: int) -> bytes:
        """Read ``size`` bytes (implicitly growing, EVM-style)."""
        self._grow(offset + size)
        return bytes(self._data[offset:offset + size])

    def load_word(self, offset: int) -> int:
        """Read one 32-byte big-endian word."""
        return int.from_bytes(self.load(offset, 32), "big")

    def __len__(self) -> int:
        return len(self._data)
