"""Instruction set: an EVM-flavoured core plus the paper's ``OP_MOVE``.

Opcode numbering follows the EVM where an equivalent exists; the new
``MOVE`` opcode takes the unused slot ``0xA8``.  As specified in
Section III-C, ``MOVE`` pops the target blockchain identifier from the
stack, assigns it to the executing contract's location field ``L_c``,
and thereby blocks further state mutation on the source chain.
"""

from __future__ import annotations

import enum
from typing import Dict


class Op(enum.IntEnum):
    """VM opcodes (values follow the EVM where applicable)."""

    STOP = 0x00
    ADD = 0x01
    MUL = 0x02
    SUB = 0x03
    DIV = 0x04
    SDIV = 0x05
    MOD = 0x06
    SMOD = 0x07
    ADDMOD = 0x08
    MULMOD = 0x09
    EXP = 0x0A
    SIGNEXTEND = 0x0B

    LT = 0x10
    GT = 0x11
    SLT = 0x12
    SGT = 0x13
    EQ = 0x14
    ISZERO = 0x15
    AND = 0x16
    OR = 0x17
    XOR = 0x18
    NOT = 0x19
    BYTE = 0x1A
    SHL = 0x1B
    SHR = 0x1C
    SAR = 0x1D

    SHA3 = 0x20

    ADDRESS = 0x30
    BALANCE = 0x31
    CALLER = 0x33
    CALLVALUE = 0x34
    CALLDATALOAD = 0x35
    CALLDATASIZE = 0x36
    CALLDATACOPY = 0x37
    CHAINID = 0x46
    NUMBER = 0x43
    TIMESTAMP = 0x42

    POP = 0x50
    MLOAD = 0x51
    MSTORE = 0x52
    MSTORE8 = 0x53
    SLOAD = 0x54
    SSTORE = 0x55
    JUMP = 0x56
    JUMPI = 0x57
    PC = 0x58
    MSIZE = 0x59
    JUMPDEST = 0x5B

    PUSH1 = 0x60   # PUSH1..PUSH32 occupy 0x60..0x7F
    PUSH32 = 0x7F
    DUP1 = 0x80    # DUP1..DUP16 occupy 0x80..0x8F
    DUP16 = 0x8F
    SWAP1 = 0x90   # SWAP1..SWAP16 occupy 0x90..0x9F
    SWAP16 = 0x9F

    LOG0 = 0xA0

    # --- the paper's extension -------------------------------------
    MOVE = 0xA8    # OP_MOVE: pop target chain id, set L_c (Section III-C)
    MOVENONCE = 0xA9  # push the contract's move nonce (replay guard reads)
    LOCATION = 0xAA   # push the contract's current L_c

    RETURN = 0xF3
    REVERT = 0xFD


def is_push(opcode: int) -> bool:
    """Is this byte one of the PUSH1..PUSH32 opcodes?"""
    return Op.PUSH1 <= opcode <= Op.PUSH32


def push_size(opcode: int) -> int:
    """Number of immediate bytes following a PUSH opcode."""
    return opcode - Op.PUSH1 + 1


def is_dup(opcode: int) -> bool:
    """Is this byte one of the DUP1..DUP16 opcodes?"""
    return Op.DUP1 <= opcode <= Op.DUP16


def is_swap(opcode: int) -> bool:
    """Is this byte one of the SWAP1..SWAP16 opcodes?"""
    return Op.SWAP1 <= opcode <= Op.SWAP16


#: Mnemonic table for the assembler/disassembler (PUSH/DUP/SWAP ranges
#: are generated).
MNEMONICS: Dict[str, int] = {op.name: int(op) for op in Op}
for _n in range(1, 33):
    MNEMONICS[f"PUSH{_n}"] = int(Op.PUSH1) + _n - 1
for _n in range(1, 17):
    MNEMONICS[f"DUP{_n}"] = int(Op.DUP1) + _n - 1
    MNEMONICS[f"SWAP{_n}"] = int(Op.SWAP1) + _n - 1

REVERSE_MNEMONICS: Dict[int, str] = {}
for _name, _code in MNEMONICS.items():
    # Prefer the generated PUSHn/DUPn/SWAPn names over enum aliases.
    REVERSE_MNEMONICS.setdefault(_code, _name)
    if _name not in ("PUSH32", "DUP16", "SWAP16"):
        REVERSE_MNEMONICS[_code] = _name
