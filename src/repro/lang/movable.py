"""Listing 1 of the paper, as a reusable base class.

The original Solidity excerpt::

    address owner;
    uint movedAt;

    function moveTo(uint _blockchainId) public {
        require(owner == msg.sender);
        require(now - movedAt >= 3 days);
    }

    function moveFinish() public {
        movedAt = now;
    }

Subclasses inherit owner-gated moves with a cool-down; both hooks can
be overridden for application-specific policies (Section V-A leaves the
move policy to the developer).
"""

from __future__ import annotations

from repro.crypto.keys import Address
from repro.runtime.contract import Contract, Slot, require

#: Listing 1 uses "3 days"; experiments use contracts with a zero
#: cool-down so moves are never throttled by policy.
DEFAULT_COOLDOWN_SECONDS = 3 * 24 * 3600


class MovableContract(Contract):
    """A contract whose owner may move it between chains."""

    owner = Slot(Address)
    moved_at = Slot(int)

    #: override in subclasses to change the policy
    MOVE_COOLDOWN: float = 0.0

    def init(self) -> None:
        """Record the deployer as the owner."""
        self.owner = self.msg.sender

    def move_to(self, target_chain: int) -> None:
        """Listing 1's guard: owner-only, cool-down respected.

        A contract that never moved (``moved_at == 0``) is always
        eligible — simulated clocks start at 0, unlike Solidity's
        ``now``, so Listing 1's bare subtraction would wrongly throttle
        the first move.
        """
        require(self.owner == self.msg.sender, "only the owner may move")
        require(
            self.moved_at == 0 or self.now - self.moved_at >= self.MOVE_COOLDOWN,
            "move cool-down not elapsed",
        )

    def move_finish(self) -> None:
        """Listing 1's completion hook: stamp the arrival time."""
        self.moved_at = int(self.now)
