"""The programming model the paper exposes to contract developers.

Section III-D extends Solidity with two developer hooks —
``moveTo(blockchainId)`` and ``moveFinish()`` — and Section V-A defines
the ``STokenI`` / ``AccountI`` interfaces that make ERC20-style tokens
movable at per-account granularity.  This package is the analogue:

* :class:`~repro.lang.movable.MovableContract` — Listing 1's pattern:
  only the owner moves the contract, with a configurable cool-down;
* :class:`~repro.lang.interfaces.STokenI` and
  :class:`~repro.lang.interfaces.AccountI` — Listing 2's interfaces;
* ``require`` re-exported from the runtime for Solidity-style guards.
"""

from repro.lang.interfaces import AccountI, STokenI
from repro.lang.movable import MovableContract
from repro.runtime.contract import require

__all__ = ["MovableContract", "STokenI", "AccountI", "require"]
