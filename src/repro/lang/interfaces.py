"""Listing 2: the Scalable Token interfaces extending ERC20.

``STokenI`` is the token factory: one instance per token, living on its
home chain, minting one ``AccountI`` contract per user.  Because a
contract lives on exactly one chain at a time, the classic ERC20
balances *map* cannot be shared across chains — instead every account
is its own movable contract, and transfers between accounts on
different chains first move one account to the other's chain
(Section V-A).

These are abstract interfaces; :mod:`repro.apps.scoin` implements them.
"""

from __future__ import annotations

from typing import Tuple

from repro.crypto.keys import Address
from repro.errors import Revert
from repro.runtime.contract import Contract, external, payable, view


class STokenI(Contract):
    """Token factory interface (Listing 2, ``contract STokenI``)."""

    @view
    def total_supply(self) -> int:
        """Total tokens ever minted across all account contracts."""
        raise Revert("abstract: total_supply")

    @payable
    def new_account(self) -> Tuple[Address, int]:
        """Create an account contract for ``msg.sender``; returns
        ``(account address, salt)`` and emits ``CreatedAccount``."""
        raise Revert("abstract: new_account")

    @payable
    def new_account_for(self, for_addr: Address) -> Tuple[Address, int]:
        """Create an account contract owned by ``for_addr``."""
        raise Revert("abstract: new_account_for")


class AccountI(Contract):
    """Per-user token account interface (Listing 2, ``contract AccountI``)."""

    @view
    def token_balance(self) -> int:
        """This account's token balance (Listing 2's ``balance()``)."""
        raise Revert("abstract: token_balance")

    @view
    def allowance(self, spender: Address) -> int:
        """Remaining tokens ``spender`` may move from this account."""
        raise Revert("abstract: allowance")

    @external
    def transfer_tokens(self, to: Address, tokens: int) -> bool:
        """Move ``tokens`` to the account contract at ``to`` (both must
        be on the same chain; Listing 2's ``transfer``)."""
        raise Revert("abstract: transfer_tokens")

    @external
    def approve(self, spender: Address, tokens: int) -> bool:
        """Grant ``spender`` an allowance (ERC20 approve)."""
        raise Revert("abstract: approve")

    @external
    def transfer_from(self, to: Address, tokens: int) -> bool:
        """Spend a previously approved allowance."""
        raise Revert("abstract: transfer_from")

    @external
    def debit(self, tokens: int, proof: bytes) -> bool:
        """Credit this account with tokens debited from a sibling; the
        ``proof`` attests the caller's origin (Section V-A)."""
        raise Revert("abstract: debit")
