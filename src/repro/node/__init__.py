"""The node runtime: a long-running process that serves chains.

Everything before this package drove chains in lockstep from benchmark
scripts — call ``produce_block`` by hand, advance the simulator, read
receipts.  :class:`Node` turns that into a *servable* runtime: it owns
one or more chains (or an entire
:class:`~repro.sharding.cluster.ShardedCluster`), wires their header
relays, drives block production (a deterministic timer driver by
default, full Tendermint consensus on request), and exposes the narrow
submission/query surface the request gateway (:mod:`repro.gateway`)
builds on.  Fault plans and telemetry thread straight through, so chaos
and observability work identically on the served path.
"""

from repro.node.node import Node

__all__ = ["Node"]
