"""A long-running node: chains + relays + block production on one clock.

The node is the *runtime* half of the served system: it assembles
chains from :class:`~repro.chain.params.ChainParams`, meshes their
header relays so any chain can verify any peer's Move2 proofs, and
drives block production off the shared discrete-event simulator.  The
*front door* half — admission, batching, backpressure — lives in
:mod:`repro.gateway` and talks to the node only through the narrow
surface defined here (``submit`` / ``receipt`` / ``subscribe`` /
``run_until``), which is also what keeps gateway-routed workloads
byte-identical to direct mempool submission.

Two block-production drivers:

* ``"timer"`` (default) — each chain commits a block every
  ``block_interval`` simulated seconds, deterministically.  This is the
  servable-system equivalent of the lockstep ``produce_block`` loops
  the benchmarks use, so results are directly comparable;
* ``"tendermint"`` — full BFT vote rounds over the simulated WAN
  (what :class:`~repro.sharding.cluster.ShardedCluster` runs); block
  cadence then includes quorum latency.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.chain.chain import Chain
from repro.chain.params import ChainParams
from repro.chain.tx import Transaction
from repro.core.registry import ChainRegistry
from repro.errors import ConfigError, UnknownChainError
from repro.ibc.headers import HeaderRelay, connect_chains
from repro.net.sim import Simulator
from repro.net.transport import Network
from repro.statedb.receipts import Receipt
from repro.telemetry import Telemetry

#: block-production drivers a node can run
DRIVERS = ("timer", "tendermint")

#: sentinel distinguishing "build a default manager" from "detach"
_BUILD = object()


class Node:
    """One runtime serving a set of chains from a shared simulator."""

    def __init__(
        self,
        params: Union[ChainParams, Sequence[ChainParams]],
        seed: int = 0,
        driver: str = "timer",
        telemetry: Optional[Telemetry] = None,
        verify_signatures: bool = True,
        relay_delay: float = 0.0,
        sim: Optional[Simulator] = None,
    ):
        if isinstance(params, ChainParams):
            params = [params]
        params = list(params)
        if not params:
            raise ConfigError("a node must serve at least one chain")
        if driver not in DRIVERS:
            raise ConfigError(f"driver must be one of {DRIVERS}, got {driver!r}")
        seen = set()
        for p in params:
            if p.chain_id in seen:
                raise ConfigError(f"duplicate chain_id {p.chain_id} in node params")
            seen.add(p.chain_id)
        self.driver = driver
        self.sim = sim if sim is not None else Simulator(seed=seed)
        self.telemetry = telemetry if telemetry is not None else Telemetry.disabled()
        self.telemetry.bind_clock(lambda: self.sim.now)
        self.registry = ChainRegistry()
        self.chains: Dict[int, Chain] = {}
        for p in params:
            self.chains[p.chain_id] = Chain(
                p,
                self.registry,
                verify_signatures=verify_signatures,
                telemetry=self.telemetry,
            )
        self.relays: List[HeaderRelay] = connect_chains(
            self.chains.values(), sim=self.sim, delay=relay_delay
        )
        self.network: Optional[Network] = None
        self.engines: List = []
        if driver == "tendermint":
            from repro.consensus.tendermint import TendermintEngine

            self.network = Network(self.sim)
            for chain in self.chains.values():
                regions = self.network.latency.assign_regions(
                    chain.params.validator_count, self.sim.rng
                )
                self.engines.append(
                    TendermintEngine(self.sim, self.network, chain, regions)
                )
        self._running = False
        self._cluster = None
        self._rebalancer = None
        self._replication = None
        self._health = None
        #: bumped on every start(); stale tick timers check it and die
        self._epoch = 0

    @classmethod
    def from_cluster(cls, cluster) -> "Node":
        """Wrap an existing :class:`~repro.sharding.cluster.ShardedCluster`
        (its simulator, shards and engines become the node's)."""
        node = cls.__new__(cls)
        node.driver = "tendermint"
        node.sim = cluster.sim
        first = cluster.shards[0] if cluster.shards else None
        node.telemetry = first.telemetry if first is not None else Telemetry.disabled()
        node.telemetry.bind_clock(lambda: node.sim.now)
        node.registry = cluster.registry
        node.chains = {chain.chain_id: chain for chain in cluster.shards}
        node.relays = []
        node.network = cluster.network
        node.engines = list(cluster.engines)
        node._running = False
        node._cluster = cluster
        node._rebalancer = None
        node._replication = None
        node._health = None
        node._epoch = 0
        return node

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self.sim.now

    @property
    def running(self) -> bool:
        return self._running

    def start(self) -> None:
        """Begin block production (idempotent, restart-safe)."""
        if self._running:
            return
        self._running = True
        self._epoch += 1
        if self._cluster is not None:
            self._cluster.start()
        elif self.driver == "tendermint":
            for engine in self.engines:
                engine.start()
        else:
            for chain in self.chains.values():
                self._schedule_tick(chain, self._epoch)
        if self._rebalancer is not None:
            self._rebalancer.start()
        if self._replication is not None:
            self._replication.start()
        if self._health is not None:
            self._health.start()

    def stop(self) -> None:
        """Halt block production (pending timers become no-ops).

        Also releases every chain's worker pools — a stopped node must
        not leak speculation or verifier processes.  Pools are
        recreated lazily, so ``start()`` after ``stop()`` still works
        (the same epoch-guard restart contract the tick timers follow).
        """
        self._running = False
        if self._rebalancer is not None:
            self._rebalancer.stop()
        if self._replication is not None:
            self._replication.stop()
        if self._health is not None:
            self._health.stop()
        if self._cluster is not None:
            self._cluster.stop()
        else:
            for engine in self.engines:
                engine.stop()
        for chain in self.chains.values():
            chain.close()

    @property
    def rebalancer(self):
        """The attached :class:`~repro.rebalance.rebalancer.Rebalancer`,
        if any."""
        return self._rebalancer

    def attach_rebalancer(self, rebalancer) -> None:
        """Host a rebalancing control loop: it starts and stops with
        block production.  Attaching while running starts it at once;
        attaching None detaches (stopping the old one)."""
        if self._rebalancer is not None and self._rebalancer is not rebalancer:
            self._rebalancer.stop()
        self._rebalancer = rebalancer
        if rebalancer is not None and self._running:
            rebalancer.start()

    @property
    def replication(self):
        """The attached
        :class:`~repro.replicate.manager.ReplicationManager`, if any."""
        return self._replication

    def attach_replication(self, manager=_BUILD):
        """Host a replication manager: its relays start and stop with
        block production.  With no argument, the existing manager is
        returned (a fresh
        :class:`~repro.replicate.manager.ReplicationManager` is built
        over this node on first use); attaching None detaches, stopping
        the old one.  Returns the attached manager."""
        if manager is _BUILD:
            if self._replication is not None:
                return self._replication
            from repro.replicate.manager import ReplicationManager

            manager = ReplicationManager(self)
        if self._replication is not None and self._replication is not manager:
            self._replication.stop()
        self._replication = manager
        if manager is not None and self._running:
            manager.start()
        return manager

    @property
    def health(self):
        """The attached :class:`~repro.health.monitor.HealthMonitor`,
        if any."""
        return self._health

    def attach_health(self, monitor=_BUILD):
        """Host a health monitor: it samples while block production
        runs.  With no argument, the existing monitor is returned (a
        stock :meth:`~repro.health.monitor.HealthMonitor.for_node`
        monitor is built on first use); attaching None detaches,
        stopping the old one.  Returns the attached monitor."""
        if monitor is _BUILD:
            if self._health is not None:
                return self._health
            from repro.health.monitor import HealthMonitor

            monitor = HealthMonitor.for_node(self)
        if self._health is not None and self._health is not monitor:
            self._health.stop()
        self._health = monitor
        if monitor is not None and self._running:
            monitor.start()
        return monitor

    def serve(self, replicas: int = 1, limits=None):
        """Stand up a serving tier over this node and return it.

        ``replicas=1`` returns a plain
        :class:`~repro.gateway.gateway.Gateway`; more returns a
        :class:`~repro.gateway.fleet.GatewayFleet` whose replicas share
        one admission budget.  Either way the result is not yet
        started — call ``.start()`` (which starts this node too) when
        the experiment begins.
        """
        from repro.gateway.fleet import GatewayFleet
        from repro.gateway.gateway import Gateway

        if replicas == 1:
            return Gateway(self, limits=limits)
        return GatewayFleet(self, replicas=replicas, limits=limits)

    def _schedule_tick(self, chain: Chain, epoch: int) -> None:
        self.sim.schedule(chain.params.block_interval, lambda: self._tick(chain, epoch))

    def _tick(self, chain: Chain, epoch: int) -> None:
        if not self._running or epoch != self._epoch:
            # Stopped, or a timer left pending across a stop()/start()
            # cycle — without the epoch check a restart would leave two
            # independent tick chains doubling block production.
            return
        chain.produce_block(self.sim.now, proposer=f"node-{chain.chain_id}")
        self._schedule_tick(chain, epoch)

    def run(self, until: Optional[float] = None) -> int:
        """Advance the simulator (see :meth:`Simulator.run`)."""
        return self.sim.run(until=until)

    def run_for(self, seconds: float) -> int:
        """Advance the simulator by ``seconds`` from now."""
        return self.sim.run(until=self.sim.now + seconds)

    def run_until(
        self,
        predicate: Callable[[], bool],
        max_time: Optional[float] = None,
        max_events: int = 10_000_000,
    ) -> bool:
        """Step events until ``predicate()`` is true, the queue drains,
        ``max_time`` is reached, or ``max_events`` fire.  Returns the
        final value of the predicate — the building block behind
        "await this handle" on a discrete-event clock."""
        fired = 0
        while not predicate():
            if max_time is not None and self.sim.now >= max_time:
                break
            if fired >= max_events:
                break
            if self.sim.run(max_events=1) == 0:
                break
            fired += 1
        return predicate()

    # ------------------------------------------------------------------
    # Submission / query surface (what the gateway builds on)
    # ------------------------------------------------------------------

    def chain(self, chain_id: int) -> Chain:
        """The served chain with this id (:class:`UnknownChainError` if
        the node does not serve it)."""
        try:
            return self.chains[chain_id]
        except KeyError:
            raise UnknownChainError(
                f"this node serves chains {sorted(self.chains)}, not {chain_id}"
            ) from None

    def submit(self, chain_id: int, tx: Transaction) -> bool:
        """Queue a transaction into a chain's mempool (False = duplicate)."""
        return self.chain(chain_id).submit(tx)

    def receipt(self, chain_id: int, tx_id: str) -> Optional[Receipt]:
        """The execution receipt, or None while still pending."""
        return self.chain(chain_id).receipts.get(tx_id)

    def view(self, chain_id: int, target, method: str, *args):
        """Read-only contract query at a chain's current head."""
        return self.chain(chain_id).view(target, method, *args)

    def apply_faults(self, plan, network: Optional[Network] = None):
        """Attach a :class:`~repro.faults.injector.FaultInjector` and
        schedule ``plan`` against this node's seams (chains, relays and
        — when running consensus — validators and the vote transport).
        Returns the injector for inspection."""
        from repro.faults.injector import FaultInjector

        injector = FaultInjector(
            self.sim,
            network=network if network is not None else self.network,
            chains=self.chains,
            engines={
                engine.chain.chain_id: engine
                for engine in self.engines
                if hasattr(engine, "chain")
            },
            relays={relay.source.chain_id: relay for relay in self.relays},
            seed=plan.seed,
            telemetry=self.telemetry,
        )
        injector.apply(plan)
        return injector
