"""Facade section: chains and the planes that connect them.

The chain substrate (:class:`Chain`, :class:`ChainParams` and the
paper's two presets), the cross-chain protocol layer (header relays,
the lockstep :class:`IBCBridge` and its :class:`MovePhases` record),
the discrete-event :class:`Simulator`, sharded clusters, the
rebalancing control plane and read-only replication.

Import from :mod:`repro.api`; this module only groups the re-exports.
"""

from __future__ import annotations

from repro.chain.chain import Chain
from repro.chain.params import ChainParams, burrow_params, ethereum_params
from repro.core.registry import ChainRegistry
from repro.ibc.bridge import IBCBridge, MovePhases
from repro.ibc.headers import HeaderRelay, connect_chains
from repro.net.sim import Simulator
from repro.rebalance import (
    RebalancePolicy,
    Rebalancer,
    ShardLoadView,
    SignalPlane,
)
from repro.replicate import (
    Mirror,
    ReplicationManager,
    ReplicationRelay,
)
from repro.sharding.cluster import ShardedCluster

__all__ = [
    "Chain",
    "ChainParams",
    "burrow_params",
    "ethereum_params",
    "ChainRegistry",
    "HeaderRelay",
    "connect_chains",
    "IBCBridge",
    "MovePhases",
    "Simulator",
    "ShardedCluster",
    "SignalPlane",
    "ShardLoadView",
    "RebalancePolicy",
    "Rebalancer",
    "ReplicationManager",
    "ReplicationRelay",
    "Mirror",
]
