"""Facade section: the serving tier.

Everything needed to stand up a serving deployment and talk to it —
the :class:`Node` runtime, the :class:`Gateway` (and the replicated
:class:`GatewayFleet`) admission tier with its :class:`PriorityClass`
model, the :class:`Client` SDK, the deterministic transports, the
request/move futures, and the push-path :class:`Subscription`.

Import from :mod:`repro.api`; this module only groups the re-exports.
"""

from __future__ import annotations

from repro.gateway import (
    Client,
    Gateway,
    GatewayFleet,
    GatewayLimits,
    InProcessTransport,
    MoveHandle,
    PriorityClass,
    RequestHandle,
    SimNetTransport,
    Subscription,
)
from repro.node import Node

__all__ = [
    "Node",
    "Gateway",
    "GatewayFleet",
    "GatewayLimits",
    "PriorityClass",
    "Client",
    "InProcessTransport",
    "SimNetTransport",
    "RequestHandle",
    "MoveHandle",
    "Subscription",
]
