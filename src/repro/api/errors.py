"""Facade section: the typed error taxonomy.

Every failure an application can observe is a :class:`ReproError`
subclass carrying a machine-readable ``code`` — clients branch on
``error.code``, never on message strings.  Protocol-level failures
root at :class:`TransactionAborted` / :class:`MoveError`;
serving-level ones at :class:`GatewayError`, with load sheds under
:class:`Overloaded` (:class:`ShedByClass` names the priority class and
client actually dropped; :class:`RateLimited` the client past its
bucket).

Import from :mod:`repro.api`; this module only groups the re-exports.
"""

from __future__ import annotations

from repro.errors import (
    ConfigError,
    ContractLocked,
    GatewayError,
    InvalidRequest,
    InvariantViolation,
    MoveError,
    OutOfGas,
    Overloaded,
    ProofError,
    RateLimited,
    ReadOnlyReplicaError,
    ReplayError,
    ReplicaUnavailable,
    ReproError,
    RequestTimeout,
    Revert,
    ShedByClass,
    TransactionAborted,
    UnknownChainError,
)

__all__ = [
    "ReproError",
    "ConfigError",
    "TransactionAborted",
    "Revert",
    "OutOfGas",
    "ContractLocked",
    "MoveError",
    "ReplayError",
    "ProofError",
    "InvariantViolation",
    "GatewayError",
    "Overloaded",
    "ShedByClass",
    "RateLimited",
    "RequestTimeout",
    "UnknownChainError",
    "InvalidRequest",
    "ReadOnlyReplicaError",
    "ReplicaUnavailable",
]
