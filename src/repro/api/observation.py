"""Facade section: observation and adversity.

:class:`Telemetry` (metrics + traces), deterministic fault injection
(:class:`FaultPlan`), and the health plane (:class:`HealthMonitor`,
SLO burn-rate alerting via :class:`SloSpec`, and the
:class:`FlightRecorder` postmortem buffer).

Import from :mod:`repro.api`; this module only groups the re-exports.
"""

from __future__ import annotations

from repro.faults.plan import FaultPlan
from repro.health import (
    FlightRecorder,
    HealthMonitor,
    SloSpec,
    default_slos,
)
from repro.telemetry import Telemetry

__all__ = [
    "Telemetry",
    "FaultPlan",
    "HealthMonitor",
    "SloSpec",
    "FlightRecorder",
    "default_slos",
]
