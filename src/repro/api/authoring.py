"""Facade section: transactions, identity and contract authoring.

The wire layer (payload kinds, :func:`sign_transaction`,
:class:`KeyPair` / :class:`Address`) and the Solidity-like authoring
layer (:class:`MovableContract`, slots, the ``external`` / ``payable``
/ ``view`` decorators, ``require``).

Import from :mod:`repro.api`; this module only groups the re-exports.
"""

from __future__ import annotations

from repro.chain.tx import (
    CallPayload,
    DeployPayload,
    Move1Payload,
    Move2Payload,
    Transaction,
    TransferPayload,
    sign_transaction,
)
from repro.crypto.keys import Address, KeyPair
from repro.lang import AccountI, MovableContract, STokenI, require
from repro.runtime import MapSlot, Slot, external, payable, register_contract, view

__all__ = [
    "Transaction",
    "sign_transaction",
    "TransferPayload",
    "DeployPayload",
    "CallPayload",
    "Move1Payload",
    "Move2Payload",
    "KeyPair",
    "Address",
    "MovableContract",
    "AccountI",
    "STokenI",
    "register_contract",
    "external",
    "payable",
    "view",
    "Slot",
    "MapSlot",
    "require",
]
