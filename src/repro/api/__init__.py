"""The stable public facade of the reproduction.

Applications, examples and the CLI import from here — never from the
deep module paths, which stay free to refactor.  The surface is the
explicit ``__all__`` below, guarded by a golden test
(``tests/unit/test_api_surface.py``): adding a name is a reviewed
decision, removing or renaming one is a breaking change.

The facade is organised in five documented sections, each a submodule
re-exported here flat (``repro.api.Gateway`` and
``repro.api.serving.Gateway`` are the same object):

* :mod:`repro.api.serving` — :class:`Node`, :class:`Gateway` and the
  replicated :class:`GatewayFleet`, :class:`PriorityClass`,
  :class:`Client`, the transports, the request/move futures and
  :class:`Subscription`;
* :mod:`repro.api.chains` — :class:`Chain` / :class:`ChainParams` and
  the paper's presets, registries, relays, the bridge, the simulator,
  sharded clusters, rebalancing and replication;
* :mod:`repro.api.authoring` — payload kinds, signing, keypairs, and
  the Solidity-like contract-authoring layer;
* :mod:`repro.api.observation` — :class:`Telemetry`, fault plans and
  the health plane;
* :mod:`repro.api.errors` — the full typed taxonomy rooted at
  :class:`ReproError`.

Quick start::

    from repro import api

    node = api.Node([api.burrow_params(1), api.ethereum_params(2)])
    fleet = api.GatewayFleet(node, replicas=4,
                             limits=api.GatewayLimits(max_queue_depth=512))
    client = api.Client(api.InProcessTransport(fleet), name="alice")
    fleet.start()

    handle = client.deploy(MyContract, chain=1)
    receipt = handle.wait()
    moved = client.move(receipt.return_value,
                        source_chain=1, target_chain=2).wait()

Deprecated aliases (old code keeps importing, with a
:class:`DeprecationWarning`): ``QueueFull`` → :class:`ShedByClass`.
"""

from __future__ import annotations

import warnings

from repro.api.authoring import (
    AccountI,
    Address,
    CallPayload,
    DeployPayload,
    KeyPair,
    MapSlot,
    MovableContract,
    Move1Payload,
    Move2Payload,
    STokenI,
    Slot,
    Transaction,
    TransferPayload,
    external,
    payable,
    register_contract,
    require,
    sign_transaction,
    view,
)
from repro.api.chains import (
    Chain,
    ChainParams,
    ChainRegistry,
    HeaderRelay,
    IBCBridge,
    Mirror,
    MovePhases,
    RebalancePolicy,
    Rebalancer,
    ReplicationManager,
    ReplicationRelay,
    ShardLoadView,
    ShardedCluster,
    SignalPlane,
    Simulator,
    burrow_params,
    connect_chains,
    ethereum_params,
)
from repro.api.errors import (
    ConfigError,
    ContractLocked,
    GatewayError,
    InvalidRequest,
    InvariantViolation,
    MoveError,
    OutOfGas,
    Overloaded,
    ProofError,
    RateLimited,
    ReadOnlyReplicaError,
    ReplayError,
    ReplicaUnavailable,
    ReproError,
    RequestTimeout,
    Revert,
    ShedByClass,
    TransactionAborted,
    UnknownChainError,
)
from repro.api.observation import (
    FaultPlan,
    FlightRecorder,
    HealthMonitor,
    SloSpec,
    Telemetry,
    default_slos,
)
from repro.api.serving import (
    Client,
    Gateway,
    GatewayFleet,
    GatewayLimits,
    InProcessTransport,
    MoveHandle,
    Node,
    PriorityClass,
    RequestHandle,
    SimNetTransport,
    Subscription,
)

from repro.api import authoring, chains, errors, observation, serving

__all__ = (
    list(serving.__all__)
    + list(chains.__all__)
    + list(authoring.__all__)
    + list(observation.__all__)
    + list(errors.__all__)
)

#: old facade name -> (replacement name, replacement object).  The old
#: spelling keeps importing — with a DeprecationWarning pointing at the
#: new one — for one deprecation cycle.
_DEPRECATED = {
    "QueueFull": ("ShedByClass", ShedByClass),
}


def __getattr__(name: str):
    if name in _DEPRECATED:
        replacement, value = _DEPRECATED[name]
        warnings.warn(
            f"repro.api.{name} is deprecated; use repro.api.{replacement}",
            DeprecationWarning,
            stacklevel=2,
        )
        return value
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
