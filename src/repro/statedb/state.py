"""Journaled, Merkle-committed world state.

Two record kinds exist (paper Section II): *accounts*, which hold
balance and a transaction nonce, and *contracts*, which additionally
hold code, storage, the Move protocol's location field ``L_c`` and the
monotonically increasing **move nonce** used against replay (Fig. 2).

Commitment layout
-----------------
Each contract's storage is committed to its own ``storage_root``, built
canonically (keys inserted in sorted order) with the chain's tree
flavour, so any verifier can rebuild the root from the full storage
contents carried by a Move2 proof.  The account tree maps
``address -> leaf`` where the leaf serializes balance, nonce, code hash,
``L_c``, move nonce and storage root; its root is the block header's
``state_root`` ``m``, and ``prove_account`` produces the ``{v} ↦ m``
account proof embedded in Move2 transactions.

Journaling
----------
Every mutation appends an undo closure.  ``snapshot()`` / ``revert()``
give transaction-level atomicity: a failed transaction (revert, out of
gas, locked contract) unwinds to the pre-transaction state exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.crypto.keys import Address
from repro.errors import StateError
from repro.merkle.proof import MembershipProof


@dataclass
class AccountRecord:
    """Externally-owned account."""

    balance: int = 0
    nonce: int = 0


@dataclass
class ContractRecord:
    """Smart-contract account.

    ``location`` is the paper's ``L_c``: the chain id where the contract
    currently lives.  While ``location`` differs from the hosting
    chain's id the contract is *locked* there — reads succeed, writes
    abort (enforced by the runtime, not here).
    """

    code_hash: bytes
    location: int
    balance: int = 0
    move_nonce: int = 0
    storage: Dict[bytes, bytes] = field(default_factory=dict)
    #: height at which L_c last changed (None = never moved); lets the
    #: garbage collector age-gate stale copies (paper §III-G c)
    moved_at_height: Optional[int] = None


def encode_account_leaf(record: AccountRecord) -> bytes:
    """Canonical account-leaf bytes (committed in the state tree)."""
    return b"A" + record.balance.to_bytes(32, "big") + record.nonce.to_bytes(8, "big")


def encode_contract_leaf(record: ContractRecord, storage_root: bytes) -> bytes:
    """Canonical contract-leaf bytes.

    Everything Move2 must verify is in here: balance (the currency the
    contract carries with it), ``L_c``, the move nonce, the code hash
    and the storage root.
    """
    return (
        b"C"
        + record.balance.to_bytes(32, "big")
        + record.location.to_bytes(8, "big")
        + record.move_nonce.to_bytes(8, "big")
        + record.code_hash
        + storage_root
    )


class WorldState:
    """Mutable world state for one chain, journaled and committable.

    ``tree_factory`` supplies the chain's authenticated structure
    (:class:`~repro.merkle.iavl.IAVLTree` for Burrow-flavoured chains,
    :class:`~repro.merkle.trie.MerklePatriciaTrie` for
    Ethereum-flavoured ones).
    """

    def __init__(self, chain_id: int, tree_factory: Callable[[], object]):
        self.chain_id = chain_id
        self._tree_factory = tree_factory
        self.accounts: Dict[Address, AccountRecord] = {}
        self.contracts: Dict[Address, ContractRecord] = {}
        #: chain-local registry of contract code actually stored here
        self.code_store: Dict[bytes, bytes] = {}
        self._journal: List[Callable[[], None]] = []
        self._dirty: Set[Address] = set()
        self._account_tree = tree_factory()
        self._committed_root: bytes = self._account_tree.root_hash  # type: ignore[attr-defined]
        self._storage_roots: Dict[Address, bytes] = {}

    # ------------------------------------------------------------------
    # Journal
    # ------------------------------------------------------------------

    def snapshot(self) -> int:
        """Mark the current journal position."""
        return len(self._journal)

    def revert(self, snap: int) -> None:
        """Undo every mutation after ``snap`` (most recent first)."""
        while len(self._journal) > snap:
            self._journal.pop()()

    def _record(self, undo: Callable[[], None]) -> None:
        self._journal.append(undo)

    # ------------------------------------------------------------------
    # Accounts
    # ------------------------------------------------------------------

    def account(self, address: Address) -> AccountRecord:
        """Fetch-or-create an externally-owned account record."""
        record = self.accounts.get(address)
        if record is None:
            record = AccountRecord()
            self.accounts[address] = record
            self._record(lambda: self.accounts.pop(address, None))
        return record

    def balance_of(self, address: Address) -> int:
        """Native balance of an account or contract (0 if unknown)."""
        if address in self.contracts:
            return self.contracts[address].balance
        record = self.accounts.get(address)
        return record.balance if record is not None else 0

    def add_balance(self, address: Address, amount: int) -> None:
        """Credit an account or contract (journaled)."""
        if amount < 0:
            raise StateError("use sub_balance for debits")
        self._dirty.add(address)
        if address in self.contracts:
            record = self.contracts[address]
            record.balance += amount
            self._record(lambda: setattr(record, "balance", record.balance - amount))
        else:
            account = self.account(address)
            account.balance += amount
            self._record(lambda: setattr(account, "balance", account.balance - amount))

    def sub_balance(self, address: Address, amount: int) -> None:
        """Debit; raises :class:`StateError` on insufficient funds."""
        if amount < 0:
            raise StateError("use add_balance for credits")
        if self.balance_of(address) < amount:
            raise StateError(f"insufficient balance at {address}")
        self._dirty.add(address)
        if address in self.contracts:
            record = self.contracts[address]
            record.balance -= amount
            self._record(lambda: setattr(record, "balance", record.balance + amount))
        else:
            account = self.account(address)
            account.balance -= amount
            self._record(lambda: setattr(account, "balance", account.balance + amount))

    def bump_nonce(self, address: Address) -> int:
        """Increment and return an EOA's transaction nonce."""
        account = self.account(address)
        account.nonce += 1
        self._dirty.add(address)
        self._record(lambda: setattr(account, "nonce", account.nonce - 1))
        return account.nonce

    # ------------------------------------------------------------------
    # Contracts
    # ------------------------------------------------------------------

    def contract(self, address: Address) -> Optional[ContractRecord]:
        """The contract record at ``address``, or None."""
        return self.contracts.get(address)

    def require_contract(self, address: Address) -> ContractRecord:
        """The contract record, or :class:`StateError` if absent."""
        record = self.contracts.get(address)
        if record is None:
            raise StateError(f"no contract at {address}")
        return record

    def create_contract(
        self,
        address: Address,
        code_hash: bytes,
        code: bytes,
        location: Optional[int] = None,
        move_nonce: int = 0,
        balance: int = 0,
    ) -> ContractRecord:
        """Instantiate a contract record (journaled).

        ``location`` defaults to this chain — a freshly created contract
        lives where it was created.  Move2 recreation passes the proven
        ``move_nonce`` and balance through.
        """
        if address in self.contracts:
            raise StateError(f"contract already exists at {address}")
        record = ContractRecord(
            code_hash=code_hash,
            location=location if location is not None else self.chain_id,
            move_nonce=move_nonce,
            balance=balance,
        )
        self.contracts[address] = record
        self._dirty.add(address)
        # Undo removes the record but leaves the dirty flag: earlier
        # journaled mutations (e.g. a balance credit) may also have
        # dirtied this address, and an over-approximate dirty set is
        # harmless (commit just re-writes an identical leaf).
        self._record(lambda: self.contracts.pop(address, None))
        if code_hash not in self.code_store:
            self.code_store[code_hash] = code
            self._record(lambda: self.code_store.pop(code_hash, None))
        return record

    def has_code(self, code_hash: bytes) -> bool:
        """Is this code blob already stored on-chain?  (Section VIII:
        recreation can skip the deposit when the code is present.)"""
        return code_hash in self.code_store

    def storage_get(self, address: Address, key: bytes) -> bytes:
        """Read a storage slot (empty bytes when unset)."""
        record = self.require_contract(address)
        return record.storage.get(key, b"")

    def storage_set(self, address: Address, key: bytes, value: bytes) -> None:
        """Write a storage slot (journaled); empty value deletes."""
        record = self.require_contract(address)
        old = record.storage.get(key)
        if value:
            record.storage[key] = value
        else:
            record.storage.pop(key, None)
        self._dirty.add(address)

        def undo() -> None:
            if old is None:
                record.storage.pop(key, None)
            else:
                record.storage[key] = old

        self._record(undo)

    def set_location(
        self, address: Address, target_chain: int, height: Optional[int] = None
    ) -> None:
        """Assign ``L_c`` (the effect of OP_MOVE, journaled).

        ``height`` stamps when the move happened, for GC age gating.
        """
        record = self.require_contract(address)
        old = record.location
        old_height = record.moved_at_height
        record.location = target_chain
        record.moved_at_height = height
        self._dirty.add(address)

        def undo() -> None:
            record.location = old
            record.moved_at_height = old_height

        self._record(undo)

    def mark_dirty(self, address: Address) -> None:
        """Flag an address for re-commitment (used by out-of-transaction
        state maintenance such as garbage collection)."""
        self._dirty.add(address)

    def bump_move_nonce(self, address: Address) -> int:
        """Increment the contract's move nonce (on Move2 completion)."""
        record = self.require_contract(address)
        record.move_nonce += 1
        self._dirty.add(address)
        self._record(lambda: setattr(record, "move_nonce", record.move_nonce - 1))
        return record.move_nonce

    def is_locked(self, address: Address) -> bool:
        """True when the contract was moved away (``L_c`` ≠ this chain)."""
        record = self.require_contract(address)
        return record.location != self.chain_id

    # ------------------------------------------------------------------
    # Commitment
    # ------------------------------------------------------------------

    def storage_root(self, address: Address) -> bytes:
        """Canonical storage root: fresh tree, keys in sorted order."""
        record = self.require_contract(address)
        return compute_storage_root(self._tree_factory, record.storage)

    def commit(self) -> bytes:
        """Fold dirty entries into the account tree; return the root.

        The journal is cleared — commit happens at block boundaries,
        after which individual transactions can no longer be reverted.
        """
        for address in sorted(self._dirty):
            if address in self.contracts:
                record = self.contracts[address]
                root = compute_storage_root(self._tree_factory, record.storage)
                self._storage_roots[address] = root
                leaf = encode_contract_leaf(record, root)
            elif address in self.accounts:
                leaf = encode_account_leaf(self.accounts[address])
            else:
                continue  # account created and reverted within the block
            self._account_tree.set(address.raw, leaf)  # type: ignore[attr-defined]
        self._dirty.clear()
        self._journal.clear()
        self._committed_root = self._account_tree.root_hash  # type: ignore[attr-defined]
        return self._committed_root

    @property
    def committed_root(self) -> bytes:
        """Root as of the last :meth:`commit`."""
        return self._committed_root

    def snapshot_tree(self):
        """A facade over the current committed account tree.

        The underlying nodes are immutable and structurally shared, so
        this is O(1) and the snapshot stays valid as the live tree
        evolves — the chain retains one per block to serve *historical*
        account proofs (Move2 proofs target the Move1 block's root, not
        the head's).
        """
        tree = self._tree_factory()
        tree._root = self._account_tree._root  # type: ignore[attr-defined]
        return tree

    def prove_account(self, address: Address) -> MembershipProof:
        """``{leaf} ↦ state_root`` proof against the last committed tree.

        Raises :class:`KeyError` if the address was never committed.
        """
        return self._account_tree.prove(address.raw)  # type: ignore[attr-defined]

    def committed_storage_root(self, address: Address) -> bytes:
        """Storage root as of the last commit that touched the address."""
        root = self._storage_roots.get(address)
        if root is None:
            raise StateError(f"no committed storage root for {address}")
        return root


def compute_storage_root(tree_factory: Callable[[], object], storage: Dict[bytes, bytes]) -> bytes:
    """Rebuild a contract storage root canonically (sorted insertion).

    Both the committing chain and any Move2 verifier call this, so the
    root is reproducible from the raw storage contents alone.
    """
    tree = tree_factory()
    for key in sorted(storage):
        tree.set(key, storage[key])  # type: ignore[attr-defined]
    return tree.root_hash  # type: ignore[attr-defined]
