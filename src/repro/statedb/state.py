"""Journaled, Merkle-committed world state.

Two record kinds exist (paper Section II): *accounts*, which hold
balance and a transaction nonce, and *contracts*, which additionally
hold code, storage, the Move protocol's location field ``L_c`` and the
monotonically increasing **move nonce** used against replay (Fig. 2).

Commitment layout
-----------------
Each contract's storage is committed to its own ``storage_root``.  The
*canonical* definition of that root — what any Move2 verifier rebuilds
from the raw storage contents carried by a proof bundle — is a fresh
tree of the chain's flavour with the keys inserted in sorted order
(:func:`compute_storage_root`).

The committing chain, however, does **not** rebuild from scratch every
block.  It keeps one *live* persistent storage trie per contract
(:class:`~repro.merkle.protocol.AuthenticatedTree`) and, at commit,
folds only the block's dirty slots into it, so commit cost is
O(dirty · log S) per touched contract instead of O(S).  The incremental
root is guaranteed bit-identical to the canonical rebuild:

* **history-independent** flavours (the Patricia trie) commit to
  content, not history — folding changed slots in any order lands on
  exactly the canonical root;
* **history-dependent** flavours (the IAVL tree, whose AVL rotations
  make the shape order-sensitive) fold *value overwrites* in place
  (overwriting a leaf never rotates, so the canonical sorted-insertion
  shape is preserved) and canonically refold the contract's trie only
  when its **key set** changed in the block.  Bulk transitions —
  Move2 recreation (:meth:`WorldState.load_storage`) and garbage
  collection (:meth:`WorldState.wipe_storage`) — rebuild the trie
  canonically in a single pass.

The equivalence is enforced by the property tests in
``tests/property/test_storage_commitment_properties.py``.

The account tree maps ``address -> leaf`` where the leaf serializes
balance, nonce, code hash, ``L_c``, move nonce and storage root; its
root is the block header's ``state_root`` ``m``, and ``prove_account``
produces the ``{v} ↦ m`` account proof embedded in Move2 transactions.

Journaling
----------
Every mutation appends an undo closure.  ``snapshot()`` / ``revert()``
give transaction-level atomicity: a failed transaction (revert, out of
gas, locked contract) unwinds to the pre-transaction state exactly.
Dirty-slot sets are deliberately *not* unwound: they over-approximate,
and folding an unchanged slot at commit just rewrites an identical
leaf.  Where a live trie is replaced wholesale inside a transaction
(:meth:`WorldState.load_storage`), the undo closure restores the prior
root pointer — an O(1) operation thanks to structural sharing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from threading import get_ident
from typing import Callable, Dict, List, Mapping, Optional, Set, Tuple

from repro.crypto.keys import Address
from repro.errors import SpeculationUnsupported, StateError
from repro.merkle.proof import MembershipProof
from repro.merkle.protocol import AuthenticatedTree, TreeFactory


@dataclass
class AccountRecord:
    """Externally-owned account."""

    balance: int = 0
    nonce: int = 0


@dataclass
class ContractRecord:
    """Smart-contract account.

    ``location`` is the paper's ``L_c``: the chain id where the contract
    currently lives.  While ``location`` differs from the hosting
    chain's id the contract is *locked* there — reads succeed, writes
    abort (enforced by the runtime, not here).
    """

    code_hash: bytes
    location: int
    balance: int = 0
    move_nonce: int = 0
    storage: Dict[bytes, bytes] = field(default_factory=dict)
    #: height at which L_c last changed (None = never moved); lets the
    #: garbage collector age-gate stale copies (paper §III-G c)
    moved_at_height: Optional[int] = None


def encode_account_leaf(record: AccountRecord) -> bytes:
    """Canonical account-leaf bytes (committed in the state tree)."""
    return b"A" + record.balance.to_bytes(32, "big") + record.nonce.to_bytes(8, "big")


def encode_contract_leaf(record: ContractRecord, storage_root: bytes) -> bytes:
    """Canonical contract-leaf bytes.

    Everything Move2 must verify is in here: balance (the currency the
    contract carries with it), ``L_c``, the move nonce, the code hash
    and the storage root.
    """
    return (
        b"C"
        + record.balance.to_bytes(32, "big")
        + record.location.to_bytes(8, "big")
        + record.move_nonce.to_bytes(8, "big")
        + record.code_hash
        + storage_root
    )


#: State-key tuples used by speculation read/write sets.  Balances and
#: nonces are keyed per address, storage per (address, slot); ``"c"``
#: covers contract-record metadata (existence, code hash, ``L_c``, move
#: nonce) and ``"code"`` the shared code store.
StateKey = Tuple


class SpeculationFrame:
    """Private overlay for one optimistically executed transaction.

    While a frame is active on the executing thread, *no* shared state
    is mutated: balance changes accumulate as deltas, storage writes
    land in a private map, and every operation is appended to a replay
    log.  Reads that consult shared state are recorded in ``reads``;
    buffered mutations in ``writes``.  The parallel block executor
    validates ``reads`` against the write sets of same-wave predecessors
    and, when clean, replays the log in original transaction order —
    making optimistic execution byte-identical to serial execution.

    Balance mutations are pure deltas (commutative), so they never
    create write/write conflicts on their own; the balance *check* in
    :meth:`WorldState.sub_balance` is a read, which is what orders
    debits against concurrent credits.
    """

    __slots__ = ("reads", "writes", "_balances", "_nonces", "_storage", "ops")

    def __init__(self) -> None:
        self.reads: Set[StateKey] = set()
        self.writes: Set[StateKey] = set()
        self._balances: Dict[Address, int] = {}
        self._nonces: Dict[Address, int] = {}
        self._storage: Dict[Address, Dict[bytes, bytes]] = {}
        #: replay log: ("add_balance", addr, amt) | ("sub_balance", ...)
        #: | ("bump_nonce", addr) | ("storage_set", addr, key, value)
        self.ops: List[Tuple] = []

    # -- overlay mutation (called by WorldState interceptors) ----------

    def add_balance(self, address: Address, amount: int) -> None:
        """Buffer a balance credit (a commutative delta)."""
        self.writes.add(("b", address))
        self._balances[address] = self._balances.get(address, 0) + amount
        self.ops.append(("add_balance", address, amount))

    def sub_balance(self, address: Address, amount: int) -> None:
        """Buffer a balance debit (sufficiency was checked as a read)."""
        self.writes.add(("b", address))
        self._balances[address] = self._balances.get(address, 0) - amount
        self.ops.append(("sub_balance", address, amount))

    def bump_nonce(self, address: Address) -> None:
        """Buffer an EOA nonce increment."""
        self.writes.add(("n", address))
        self._nonces[address] = self._nonces.get(address, 0) + 1
        self.ops.append(("bump_nonce", address))

    def storage_set(self, address: Address, key: bytes, value: bytes) -> None:
        """Buffer a storage-slot write (empty value = delete)."""
        self.writes.add(("s", address, key))
        self._storage.setdefault(address, {})[key] = value
        self.ops.append(("storage_set", address, key, value))

    # -- overlay reads -------------------------------------------------

    def balance_delta(self, address: Address) -> int:
        """Net buffered balance change for ``address``."""
        return self._balances.get(address, 0)

    def nonce_delta(self, address: Address) -> int:
        """Net buffered nonce increments for ``address``."""
        return self._nonces.get(address, 0)

    def storage_overlay(self, address: Address, key: bytes) -> Optional[bytes]:
        """Buffered slot value, or None when the slot was not written
        by this frame (``b""`` is a buffered delete)."""
        per_contract = self._storage.get(address)
        if per_contract is None:
            return None
        return per_contract.get(key)

    # -- transaction-level snapshot/revert -----------------------------

    def snapshot(self) -> int:
        """Mark the current op-log position (frame-local journal)."""
        return len(self.ops)

    def revert(self, snap: int) -> None:
        """Discard every buffered op after ``snap`` and rebuild the
        overlay by replaying the survivors (logs are short; the read
        set is deliberately left over-approximate)."""
        if snap >= len(self.ops):
            return
        kept = self.ops[:snap]
        self.ops = []
        self.writes = set()
        self._balances = {}
        self._nonces = {}
        self._storage = {}
        for op in kept:
            getattr(self, op[0])(*op[1:])


class WorldState:
    """Mutable world state for one chain, journaled and committable.

    ``tree_factory`` supplies the chain's authenticated structure
    (:class:`~repro.merkle.iavl.IAVLTree` for Burrow-flavoured chains,
    :class:`~repro.merkle.trie.MerklePatriciaTrie` for
    Ethereum-flavoured ones).
    """

    def __init__(self, chain_id: int, tree_factory: TreeFactory):
        self.chain_id = chain_id
        self._tree_factory = tree_factory
        self.accounts: Dict[Address, AccountRecord] = {}
        self.contracts: Dict[Address, ContractRecord] = {}
        #: chain-local registry of contract code actually stored here
        self.code_store: Dict[bytes, bytes] = {}
        self._journal: List[Callable[[], None]] = []
        self._dirty: Set[Address] = set()
        #: per-contract set of slots written since the last commit; the
        #: incremental commit folds exactly these into the live trie
        self._dirty_slots: Dict[Address, Set[bytes]] = {}
        #: one live persistent storage trie per contract, kept root-
        #: identical to the canonical sorted rebuild at every commit
        self._storage_tries: Dict[Address, AuthenticatedTree] = {}
        self._account_tree: AuthenticatedTree = tree_factory()
        self._committed_root: bytes = self._account_tree.root_hash
        self._storage_roots: Dict[Address, bytes] = {}
        #: active speculation frames keyed by executing thread id; empty
        #: in serial operation, so the hot-path check is one falsy test
        self._frames: Dict[int, SpeculationFrame] = {}
        #: addresses whose local record is a read-only replica of a
        #: contract living on another chain (repro.replicate); a mirror
        #: is *never* the active copy, so writes against one are typed
        #: protocol violations and GC must not sweep its storage
        self._mirrors: Set[Address] = set()
        #: addresses whose storage was replaced wholesale since the last
        #: commit (Move2 load, GC wipe, mirror apply) — the replication
        #: log reads this to rebase its delta capture on a full image
        self._storage_replaced: Set[Address] = set()

    @property
    def tree_factory(self) -> TreeFactory:
        """The chain's tree flavour (public, for proof builders)."""
        return self._tree_factory

    # ------------------------------------------------------------------
    # Journal
    # ------------------------------------------------------------------

    def snapshot(self) -> int:
        """Mark the current journal position (frame-local while the
        calling thread executes speculatively)."""
        frame = self._frames.get(get_ident()) if self._frames else None
        if frame is not None:
            return frame.snapshot()
        return len(self._journal)

    def revert(self, snap: int) -> None:
        """Undo every mutation after ``snap`` (most recent first)."""
        frame = self._frames.get(get_ident()) if self._frames else None
        if frame is not None:
            frame.revert(snap)
            return
        while len(self._journal) > snap:
            self._journal.pop()()

    def _record(self, undo: Callable[[], None]) -> None:
        self._journal.append(undo)

    # ------------------------------------------------------------------
    # Speculative execution (optimistic concurrency)
    # ------------------------------------------------------------------

    def _frame(self) -> Optional[SpeculationFrame]:
        """The calling thread's active speculation frame, if any."""
        if not self._frames:
            return None
        return self._frames.get(get_ident())

    def begin_speculation(self, frame: SpeculationFrame) -> None:
        """Route this thread's state operations into ``frame``.

        While active, reads consult the frame's overlay before shared
        state (recording read keys) and *all* mutations are buffered —
        shared structures are never touched, so speculating threads
        cannot interfere with each other regardless of interleaving.
        """
        self._frames[get_ident()] = frame

    def end_speculation(self) -> None:
        """Detach the calling thread's frame (buffered ops are kept on
        the frame for validation/commit by the block executor)."""
        self._frames.pop(get_ident(), None)

    def apply_speculation(self, frame: SpeculationFrame) -> None:
        """Replay a validated frame's op log against shared state.

        Called by the parallel block executor in original transaction
        order, *without* an active frame, so every op runs through the
        normal journaled mutation path — the resulting journal, dirty
        sets and state are exactly what serial execution would have
        produced.
        """
        for op in frame.ops:
            getattr(self, op[0])(*op[1:])

    # ------------------------------------------------------------------
    # Accounts
    # ------------------------------------------------------------------

    def account(self, address: Address) -> AccountRecord:
        """Fetch-or-create an externally-owned account record."""
        if self._frames and self._frames.get(get_ident()) is not None:
            # Handing out a shared mutable record would bypass the
            # overlay; no speculative execution path needs it.
            raise SpeculationUnsupported("direct account-record access")
        record = self.accounts.get(address)
        if record is None:
            record = AccountRecord()
            self.accounts[address] = record
            self._record(lambda: self.accounts.pop(address, None))
        return record

    def balance_of(self, address: Address) -> int:
        """Native balance of an account or contract (0 if unknown)."""
        frame = self._frames.get(get_ident()) if self._frames else None
        if frame is not None:
            frame.reads.add(("b", address))
            return self._shared_balance(address) + frame.balance_delta(address)
        return self._shared_balance(address)

    def _shared_balance(self, address: Address) -> int:
        if address in self.contracts:
            return self.contracts[address].balance
        record = self.accounts.get(address)
        return record.balance if record is not None else 0

    def add_balance(self, address: Address, amount: int) -> None:
        """Credit an account or contract (journaled)."""
        if amount < 0:
            raise StateError("use sub_balance for debits")
        frame = self._frames.get(get_ident()) if self._frames else None
        if frame is not None:
            frame.add_balance(address, amount)
            return
        self._dirty.add(address)
        if address in self.contracts:
            record = self.contracts[address]
            record.balance += amount
            self._record(lambda: setattr(record, "balance", record.balance - amount))
        else:
            account = self.account(address)
            account.balance += amount
            self._record(lambda: setattr(account, "balance", account.balance - amount))

    def sub_balance(self, address: Address, amount: int) -> None:
        """Debit; raises :class:`StateError` on insufficient funds."""
        if amount < 0:
            raise StateError("use add_balance for credits")
        if self.balance_of(address) < amount:  # records the frame read
            raise StateError(f"insufficient balance at {address}")
        frame = self._frames.get(get_ident()) if self._frames else None
        if frame is not None:
            frame.sub_balance(address, amount)
            return
        self._dirty.add(address)
        if address in self.contracts:
            record = self.contracts[address]
            record.balance -= amount
            self._record(lambda: setattr(record, "balance", record.balance + amount))
        else:
            account = self.account(address)
            account.balance -= amount
            self._record(lambda: setattr(account, "balance", account.balance + amount))

    def bump_nonce(self, address: Address) -> int:
        """Increment and return an EOA's transaction nonce."""
        frame = self._frames.get(get_ident()) if self._frames else None
        if frame is not None:
            frame.reads.add(("n", address))
            shared = self.accounts.get(address)
            base = shared.nonce if shared is not None else 0
            frame.bump_nonce(address)
            return base + frame.nonce_delta(address)
        account = self.account(address)
        account.nonce += 1
        self._dirty.add(address)
        self._record(lambda: setattr(account, "nonce", account.nonce - 1))
        return account.nonce

    # ------------------------------------------------------------------
    # Contracts
    # ------------------------------------------------------------------

    def contract(self, address: Address) -> Optional[ContractRecord]:
        """The contract record at ``address``, or None.

        Under speculation the *shared* record is returned (its metadata
        fields — code hash, ``L_c``, move nonce — only change through
        barrier transactions, never concurrently) and the access is
        recorded as a read; mutations all go through intercepted
        :class:`WorldState` methods, never through the record directly.
        """
        frame = self._frames.get(get_ident()) if self._frames else None
        if frame is not None:
            frame.reads.add(("c", address))
        return self.contracts.get(address)

    def require_contract(self, address: Address) -> ContractRecord:
        """The contract record, or :class:`StateError` if absent."""
        record = self.contract(address)
        if record is None:
            raise StateError(f"no contract at {address}")
        return record

    def create_contract(
        self,
        address: Address,
        code_hash: bytes,
        code: bytes,
        location: Optional[int] = None,
        move_nonce: int = 0,
        balance: int = 0,
    ) -> ContractRecord:
        """Instantiate a contract record (journaled).

        ``location`` defaults to this chain — a freshly created contract
        lives where it was created.  Move2 recreation passes the proven
        ``move_nonce`` and balance through.
        """
        if self._frames and self._frames.get(get_ident()) is not None:
            raise SpeculationUnsupported("contract creation")
        if address in self.contracts:
            raise StateError(f"contract already exists at {address}")
        record = ContractRecord(
            code_hash=code_hash,
            location=location if location is not None else self.chain_id,
            move_nonce=move_nonce,
            balance=balance,
        )
        self.contracts[address] = record
        self._storage_tries[address] = self._tree_factory()
        self._dirty.add(address)

        # Undo removes the record but leaves the dirty flag: earlier
        # journaled mutations (e.g. a balance credit) may also have
        # dirtied this address, and an over-approximate dirty set is
        # harmless (commit just re-writes an identical leaf).
        def undo_create() -> None:
            self.contracts.pop(address, None)
            self._storage_tries.pop(address, None)

        self._record(undo_create)
        if code_hash not in self.code_store:
            self.code_store[code_hash] = code
            self._record(lambda: self.code_store.pop(code_hash, None))
        return record

    def has_code(self, code_hash: bytes) -> bool:
        """Is this code blob already stored on-chain?  (Section VIII:
        recreation can skip the deposit when the code is present.)"""
        frame = self._frames.get(get_ident()) if self._frames else None
        if frame is not None:
            frame.reads.add(("code", code_hash))
        return code_hash in self.code_store

    def storage_get(self, address: Address, key: bytes) -> bytes:
        """Read a storage slot (empty bytes when unset)."""
        record = self.require_contract(address)
        frame = self._frames.get(get_ident()) if self._frames else None
        if frame is not None:
            frame.reads.add(("s", address, key))
            buffered = frame.storage_overlay(address, key)
            if buffered is not None:
                return buffered
        return record.storage.get(key, b"")

    def storage_set(self, address: Address, key: bytes, value: bytes) -> None:
        """Write a storage slot (journaled); empty value deletes."""
        record = self.require_contract(address)
        frame = self._frames.get(get_ident()) if self._frames else None
        if frame is not None:
            frame.storage_set(address, key, value)
            return
        old = record.storage.get(key)
        if value:
            record.storage[key] = value
        else:
            record.storage.pop(key, None)
        self._dirty.add(address)
        self._dirty_slots.setdefault(address, set()).add(key)

        def undo() -> None:
            if old is None:
                record.storage.pop(key, None)
            else:
                record.storage[key] = old

        self._record(undo)

    def load_storage(self, address: Address, entries: Mapping[bytes, bytes]) -> None:
        """Replace a contract's storage wholesale (journaled).

        Move2 recreation uses this to bulk-load the proven slots: the
        live storage trie is rebuilt canonically in a single sorted
        pass instead of journaling one write per slot.  The undo
        closure restores the prior dict contents *and* the prior trie
        root pointer (O(1) — the old nodes are structurally shared).
        """
        if self._frames and self._frames.get(get_ident()) is not None:
            raise SpeculationUnsupported("bulk storage replacement")
        record = self.require_contract(address)
        prior_storage = dict(record.storage)
        prior_tree = self._storage_tries.get(address)
        prior_dirty = self._dirty_slots.get(address)
        record.storage.clear()
        for key, value in entries.items():
            if value:
                record.storage[key] = value
        self._storage_tries[address] = build_storage_trie(
            self._tree_factory, record.storage
        )
        # The fresh trie matches the dict exactly — no slots left to fold.
        self._dirty_slots[address] = set()
        self._dirty.add(address)
        # Over-approximate on revert: a spurious mark just makes the
        # replication log rebase on a full (correct) image.
        self._storage_replaced.add(address)

        def undo() -> None:
            record.storage.clear()
            record.storage.update(prior_storage)
            if prior_tree is None:
                self._storage_tries.pop(address, None)
            else:
                self._storage_tries[address] = prior_tree
            if prior_dirty is None:
                self._dirty_slots.pop(address, None)
            else:
                self._dirty_slots[address] = prior_dirty

        self._record(undo)

    def wipe_storage(self, address: Address) -> None:
        """Clear a contract's storage outside any transaction (GC).

        Not journaled: garbage collection runs between blocks, exactly
        like a state-pruning pass would.  The live trie is reset to an
        empty one (canonical for the empty key set) and the address is
        marked for re-commitment.
        """
        record = self.require_contract(address)
        record.storage.clear()
        self._storage_tries[address] = self._tree_factory()
        self._dirty_slots.pop(address, None)
        self._dirty.add(address)
        self._storage_replaced.add(address)

    def set_location(
        self, address: Address, target_chain: int, height: Optional[int] = None
    ) -> None:
        """Assign ``L_c`` (the effect of OP_MOVE, journaled).

        ``height`` stamps when the move happened, for GC age gating.
        """
        if self._frames and self._frames.get(get_ident()) is not None:
            raise SpeculationUnsupported("L_c assignment")
        record = self.require_contract(address)
        old = record.location
        old_height = record.moved_at_height
        was_mirror = address in self._mirrors
        record.location = target_chain
        record.moved_at_height = height
        if was_mirror and target_chain == self.chain_id:
            # A Move2 landed on a chain that hosted a mirror: the record
            # is upgraded to the active copy and stops being read-only.
            self._mirrors.discard(address)
        self._dirty.add(address)

        def undo() -> None:
            record.location = old
            record.moved_at_height = old_height
            if was_mirror:
                self._mirrors.add(address)

        self._record(undo)

    def mark_dirty(self, address: Address) -> None:
        """Flag an address for re-commitment (used by out-of-transaction
        state maintenance such as garbage collection)."""
        self._dirty.add(address)

    def bump_move_nonce(self, address: Address) -> int:
        """Increment the contract's move nonce (on Move2 completion)."""
        if self._frames and self._frames.get(get_ident()) is not None:
            raise SpeculationUnsupported("move-nonce bump")
        record = self.require_contract(address)
        record.move_nonce += 1
        self._dirty.add(address)
        self._record(lambda: setattr(record, "move_nonce", record.move_nonce - 1))
        return record.move_nonce

    def is_locked(self, address: Address) -> bool:
        """True when the contract was moved away (``L_c`` ≠ this chain)."""
        record = self.require_contract(address)
        return record.location != self.chain_id

    # ------------------------------------------------------------------
    # Read-only replicas (repro.replicate)
    # ------------------------------------------------------------------

    def is_mirror(self, address: Address) -> bool:
        """True when the local record is a read-only replica.

        Mirrors carry ``location`` = the source chain's id (so every
        lock check already treats them as non-active) plus this flag,
        which distinguishes them from moved-away relics: a relic's
        storage is garbage, a mirror's storage is live replicated state
        that GC must preserve and writes must reject with
        :class:`~repro.errors.ReadOnlyReplicaError`.
        """
        frame = self._frames.get(get_ident()) if self._frames else None
        if frame is not None:
            frame.reads.add(("c", address))
        return address in self._mirrors

    def apply_mirror(
        self,
        address: Address,
        *,
        code_hash: bytes,
        code: bytes,
        storage: Mapping[bytes, bytes],
        balance: int,
        location: int,
    ) -> ContractRecord:
        """Create or refresh a read-only replica (not journaled).

        Called by the replication relay between blocks — exactly like
        GC — after it has *verified* the new image against the source
        chain's committed state root.  ``location`` is the proven
        ``L_c`` (the source chain id), so the record is locked by
        construction.  The local ``move_nonce`` is never lowered: a
        relic upgraded to a mirror keeps its nonce so I2 monotonicity
        holds and a later legitimate Move2 onto this chain still passes
        the replay guard (mirrors never claim the source's nonce for the
        same reason).
        """
        if self._frames and self._frames.get(get_ident()) is not None:
            raise SpeculationUnsupported("mirror application")
        record = self.contracts.get(address)
        if record is None:
            record = ContractRecord(
                code_hash=code_hash, location=location, balance=balance
            )
            self.contracts[address] = record
        else:
            if address not in self._mirrors and record.location == self.chain_id:
                raise StateError(
                    f"cannot mirror over the active contract at {address}"
                )
            record.code_hash = code_hash
            record.location = location
            record.balance = balance
        if code_hash not in self.code_store:
            self.code_store[code_hash] = code
        record.storage.clear()
        for key, value in storage.items():
            if value:
                record.storage[key] = value
        self._storage_tries[address] = build_storage_trie(
            self._tree_factory, record.storage
        )
        self._dirty_slots[address] = set()
        self._storage_replaced.add(address)
        self._dirty.add(address)
        self._mirrors.add(address)
        return record

    def drop_mirror(self, address: Address) -> None:
        """Demote a replica back to an ordinary stale record (not
        journaled).  Its storage is wiped immediately — a tombstoned
        mirror must be *unavailable*, never silently stale — and the
        record becomes an ordinary relic the garbage collector may age
        out."""
        if address not in self._mirrors:
            return
        self._mirrors.discard(address)
        self.wipe_storage(address)

    def pending_storage_changes(
        self, address: Address
    ) -> Optional[Dict[bytes, bytes]]:
        """Slot writes since the last commit (``b""`` marks a delete),
        or ``None`` when the storage was replaced wholesale this block
        (Move2 load, GC wipe) and the caller must rebase on the full
        image.  The replication log calls this just before commit to
        capture the block's delta."""
        if address in self._storage_replaced:
            return None
        record = self.contracts.get(address)
        if record is None:
            return None
        dirty = self._dirty_slots.get(address)
        if not dirty:
            return {}
        return {key: record.storage.get(key, b"") for key in sorted(dirty)}

    # ------------------------------------------------------------------
    # Commitment
    # ------------------------------------------------------------------

    def storage_root(self, address: Address) -> bytes:
        """Canonical storage root: fresh tree, keys in sorted order."""
        record = self.require_contract(address)
        return compute_storage_root(self._tree_factory, record.storage)

    def _live_storage_trie(self, address: Address) -> AuthenticatedTree:
        """Fetch-or-build the contract's live storage trie."""
        tree = self._storage_tries.get(address)
        if tree is None:
            record = self.require_contract(address)
            tree = build_storage_trie(self._tree_factory, record.storage)
            self._storage_tries[address] = tree
        return tree

    def _commit_storage(self, address: Address, record: ContractRecord) -> bytes:
        """Fold the block's dirty slots into the live trie; return the
        root — bit-identical to the canonical sorted rebuild."""
        tree = self._storage_tries.get(address)
        if tree is None:
            tree = build_storage_trie(self._tree_factory, record.storage)
            self._storage_tries[address] = tree
            return tree.root_hash
        dirty = self._dirty_slots.get(address)
        if not dirty:
            return tree.root_hash
        if not tree.history_independent and any(
            (key in record.storage) != (key in tree) for key in dirty
        ):
            # The key set changed: overwrite-folding cannot reproduce
            # the canonical (sorted-insertion) shape of a history-
            # dependent tree, so refold this contract from scratch.
            tree = build_storage_trie(self._tree_factory, record.storage)
            self._storage_tries[address] = tree
            return tree.root_hash
        # Pure incremental path: either the tree commits to content
        # alone, or every dirty slot is a value overwrite (which never
        # rotates, preserving the canonical shape).
        for key in sorted(dirty):
            value = record.storage.get(key)
            if value is None:
                tree.delete(key)
            else:
                tree.set(key, value)
        return tree.root_hash

    def commit(self) -> bytes:
        """Fold dirty entries into the account tree; return the root.

        Per dirty contract, only the slots written since the last
        commit are folded into its live storage trie (O(dirty · log S)
        instead of the O(S) rebuild).  The journal is cleared — commit
        happens at block boundaries, after which individual
        transactions can no longer be reverted.
        """
        for address in sorted(self._dirty):
            if address in self.contracts:
                record = self.contracts[address]
                root = self._commit_storage(address, record)
                self._storage_roots[address] = root
                leaf = encode_contract_leaf(record, root)
            elif address in self.accounts:
                leaf = encode_account_leaf(self.accounts[address])
            else:
                continue  # account created and reverted within the block
            self._account_tree.set(address.raw, leaf)
        self._dirty.clear()
        self._dirty_slots.clear()
        self._storage_replaced.clear()
        self._journal.clear()
        self._committed_root = self._account_tree.root_hash
        return self._committed_root

    @property
    def committed_root(self) -> bytes:
        """Root as of the last :meth:`commit`."""
        return self._committed_root

    def snapshot_tree(self) -> AuthenticatedTree:
        """An O(1) snapshot of the current committed account tree.

        The underlying nodes are immutable and structurally shared, so
        the snapshot stays valid as the live tree evolves — the chain
        retains one per block to serve *historical* account proofs
        (Move2 proofs target the Move1 block's root, not the head's).
        """
        return self._account_tree.snapshot()

    def storage_trie_snapshot(self, address: Address) -> AuthenticatedTree:
        """An O(1) snapshot of the contract's committed storage trie.

        Valid between commits (the live trie is only mutated at commit
        or by whole-trie replacement inside a transaction); the chain
        uses it to serve storage-entry proofs without rebuilding the
        trie from the raw slots.
        """
        return self._live_storage_trie(address).snapshot()

    def prove_account(self, address: Address) -> MembershipProof:
        """``{leaf} ↦ state_root`` proof against the last committed tree.

        Raises :class:`KeyError` if the address was never committed.
        """
        return self._account_tree.prove(address.raw)

    def prove_storage(self, address: Address, key: bytes) -> MembershipProof:
        """``{slot} ↦ storage_root`` proof against the contract's
        committed storage trie.

        Raises :class:`KeyError` if the slot is not committed.
        """
        return self._live_storage_trie(address).prove(key)

    def committed_storage_root(self, address: Address) -> bytes:
        """Storage root as of the last commit that touched the address."""
        root = self._storage_roots.get(address)
        if root is None:
            raise StateError(f"no committed storage root for {address}")
        return root


def build_storage_trie(
    tree_factory: TreeFactory, storage: Mapping[bytes, bytes]
) -> AuthenticatedTree:
    """Build a contract storage trie canonically (sorted insertion)."""
    tree = tree_factory()
    for key in sorted(storage):
        tree.set(key, storage[key])
    return tree


def compute_storage_root(
    tree_factory: TreeFactory, storage: Mapping[bytes, bytes]
) -> bytes:
    """Rebuild a contract storage root canonically (sorted insertion).

    This is the *reference* definition of the storage commitment: any
    Move2 verifier calls it on the raw storage contents carried by a
    proof bundle, so the root is reproducible with no write history.
    The committing chain's incremental path (:meth:`WorldState.commit`)
    is guaranteed to produce the identical root.
    """
    return build_storage_trie(tree_factory, storage).root_hash
