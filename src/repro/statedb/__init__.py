"""World state: accounts, contracts, storage, receipts.

The state database is the bridge between execution and commitment:
every mutation is journaled (so failed transactions roll back exactly),
and :meth:`~repro.statedb.state.WorldState.commit` folds dirty entries
into the chain's authenticated tree, producing the per-block state root
that Move2 proofs are verified against.
"""

from repro.statedb.receipts import Receipt
from repro.statedb.state import AccountRecord, ContractRecord, WorldState

__all__ = ["WorldState", "AccountRecord", "ContractRecord", "Receipt"]
