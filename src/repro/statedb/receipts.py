"""Transaction receipts."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple


@dataclass
class Receipt:
    """Outcome of one executed transaction.

    ``gas_by_category`` preserves the meter's split (execution /
    code_deposit / proof_verify / ...) — the Fig. 9 harness reads the
    breakdown straight from receipts.
    """

    tx_id: str
    success: bool
    gas_used: int
    error: Optional[str] = None
    return_value: Any = None
    logs: List[Tuple[str, Dict[str, Any]]] = field(default_factory=list)
    block_height: Optional[int] = None
    block_time: Optional[float] = None
    gas_by_category: Dict[str, int] = field(default_factory=dict)
    #: native currency actually deducted for gas (0 on free chains)
    fee_paid: int = 0
