"""Transaction signatures.

Two interchangeable signers implement the :class:`Signer` protocol:

* :class:`Ed25519Signer` — a real, self-contained Ed25519
  implementation (RFC 8032 flavour over edwards25519).  Used in unit
  tests and small examples; a signature costs a few modular
  exponentiations, which is too slow for simulations replaying hundreds
  of thousands of transactions.
* :class:`SimulatedSigner` — a deterministic hash-based stand-in whose
  signatures are verifiable by any party inside the simulation.  It is
  *not* cryptographically unforgeable (the "private key" is derivable
  from the seed), which is irrelevant here: the paper measures latency
  and gas, not signature security, and the simulator is a closed world.

Both derive the public key from a 32-byte seed, so a
:class:`~repro.crypto.keys.KeyPair` works with either.
"""

from __future__ import annotations

import hashlib
from typing import Protocol

from repro.crypto.hashing import keccak
from repro.errors import SignatureError

# ---------------------------------------------------------------------------
# Ed25519 (RFC 8032), self-contained
# ---------------------------------------------------------------------------

_P = 2**255 - 19
_L = 2**252 + 27742317777372353535851937790883648493
_D = -121665 * pow(121666, _P - 2, _P) % _P
_I = pow(2, (_P - 1) // 4, _P)


def _sha512(data: bytes) -> bytes:
    return hashlib.sha512(data).digest()


def _inv(x: int) -> int:
    return pow(x, _P - 2, _P)


def _recover_x(y: int) -> int:
    xx = (y * y - 1) * _inv(_D * y * y + 1)
    x = pow(xx, (_P + 3) // 8, _P)
    if (x * x - xx) % _P != 0:
        x = (x * _I) % _P
    if (x * x - xx) % _P != 0:
        raise SignatureError("point decompression failed")
    if x % 2 != 0:
        x = _P - x
    return x


_BY = 4 * _inv(5) % _P
_BX = _recover_x(_BY)
_B = (_BX % _P, _BY % _P, 1, (_BX * _BY) % _P)  # extended coordinates
_IDENT = (0, 1, 1, 0)


def _edwards_add(p: tuple, q: tuple) -> tuple:
    x1, y1, z1, t1 = p
    x2, y2, z2, t2 = q
    a = (y1 - x1) * (y2 - x2) % _P
    b = (y1 + x1) * (y2 + x2) % _P
    c = t1 * 2 * _D * t2 % _P
    dd = z1 * 2 * z2 % _P
    e, f, g, h = b - a, dd - c, dd + c, b + a
    return (e * f % _P, g * h % _P, f * g % _P, e * h % _P)


def _scalarmult(p: tuple, e: int) -> tuple:
    q = _IDENT
    while e > 0:
        if e & 1:
            q = _edwards_add(q, p)
        p = _edwards_add(p, p)
        e >>= 1
    return q


def _point_compress(p: tuple) -> bytes:
    x, y, z, _t = p
    zinv = _inv(z)
    x, y = x * zinv % _P, y * zinv % _P
    return (y | ((x & 1) << 255)).to_bytes(32, "little")


def _point_decompress(s: bytes) -> tuple:
    if len(s) != 32:
        raise SignatureError("bad point encoding")
    y = int.from_bytes(s, "little")
    sign = y >> 255
    y &= (1 << 255) - 1
    if y >= _P:
        raise SignatureError("bad point encoding")
    x = _recover_x(y)
    if (x & 1) != sign:
        x = _P - x
    return (x % _P, y % _P, 1, (x * y) % _P)


def _point_equal(p: tuple, q: tuple) -> bool:
    x1, y1, z1, _ = p
    x2, y2, z2, _ = q
    return (x1 * z2 - x2 * z1) % _P == 0 and (y1 * z2 - y2 * z1) % _P == 0


def ed25519_public_key(seed: bytes) -> bytes:
    """Derive the 32-byte Ed25519 public key from a 32-byte seed."""
    h = _sha512(seed)
    a = int.from_bytes(h[:32], "little")
    a &= (1 << 254) - 8
    a |= 1 << 254
    return _point_compress(_scalarmult(_B, a))


def ed25519_sign(seed: bytes, message: bytes) -> bytes:
    """Produce a 64-byte Ed25519 signature over ``message``."""
    h = _sha512(seed)
    a = int.from_bytes(h[:32], "little")
    a &= (1 << 254) - 8
    a |= 1 << 254
    prefix = h[32:]
    public = _point_compress(_scalarmult(_B, a))
    r = int.from_bytes(_sha512(prefix + message), "little") % _L
    rp = _point_compress(_scalarmult(_B, r))
    k = int.from_bytes(_sha512(rp + public + message), "little") % _L
    s = (r + k * a) % _L
    return rp + s.to_bytes(32, "little")


def ed25519_verify(public: bytes, message: bytes, signature: bytes) -> bool:
    """Verify an Ed25519 signature; returns False instead of raising."""
    if len(signature) != 64 or len(public) != 32:
        return False
    try:
        a_point = _point_decompress(public)
        r_point = _point_decompress(signature[:32])
    except SignatureError:
        return False
    s = int.from_bytes(signature[32:], "little")
    if s >= _L:
        return False
    k = int.from_bytes(_sha512(signature[:32] + public + message), "little") % _L
    lhs = _scalarmult(_B, s)
    rhs = _edwards_add(r_point, _scalarmult(a_point, k))
    return _point_equal(lhs, rhs)


# ---------------------------------------------------------------------------
# Signer protocol + implementations
# ---------------------------------------------------------------------------


class Signer(Protocol):
    """Minimal signing interface used by transaction construction."""

    def public_key(self, seed: bytes) -> bytes:
        """Derive the public key for a seed."""

    def sign(self, seed: bytes, message: bytes) -> bytes:
        """Sign ``message`` with the private key derived from ``seed``."""

    def verify(self, public_key: bytes, message: bytes, signature: bytes) -> bool:
        """Check a signature against a public key."""


class Ed25519Signer:
    """Real Ed25519 signatures (slow; for tests and small demos)."""

    def public_key(self, seed: bytes) -> bytes:
        """Derive the Ed25519 public key from a 32-byte seed."""
        return ed25519_public_key(seed)

    def sign(self, seed: bytes, message: bytes) -> bytes:
        """Sign ``message`` with the seed-derived private key."""
        return ed25519_sign(seed, message)

    def verify(self, public_key: bytes, message: bytes, signature: bytes) -> bool:
        """Check an Ed25519 signature (False on any malformation)."""
        return ed25519_verify(public_key, message, signature)


class SimulatedSigner:
    """Fast deterministic signatures for large simulations.

    ``sig = H("sig", pub, H("pub", seed-derivation), msg)`` — the
    verifier recomputes the same digest from the public key it already
    trusts, so honest-path verification behaves exactly like a real
    scheme inside the closed simulation world.
    """

    def public_key(self, seed: bytes) -> bytes:
        """Hash-derived public key (the in-simulation identity)."""
        return keccak(b"pub", seed)

    def sign(self, seed: bytes, message: bytes) -> bytes:
        """Deterministic hash signature over (public key, message)."""
        public = keccak(b"pub", seed)
        return keccak(b"sig", public, message)

    def verify(self, public_key: bytes, message: bytes, signature: bytes) -> bool:
        """Recompute and compare the hash signature."""
        return signature == keccak(b"sig", public_key, message)
