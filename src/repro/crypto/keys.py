"""Accounts, addresses and address-derivation rules.

The paper (Section III-G) requires that interacting blockchains use the
same rule to derive account identifiers, and that contract addresses
incorporate the *creating* blockchain's identifier so contract ids are
unique system-wide.  A contract therefore keeps its address as it moves:
the creating chain's id is baked in at creation time.

Addresses are 20 bytes, shown as ``0x``-prefixed hex.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.hashing import keccak

ADDRESS_SIZE = 20


@dataclass(frozen=True, order=True)
class Address:
    """A 20-byte account or contract identifier."""

    raw: bytes

    def __post_init__(self) -> None:
        if len(self.raw) != ADDRESS_SIZE:
            raise ValueError(f"address must be {ADDRESS_SIZE} bytes, got {len(self.raw)}")

    @classmethod
    def from_hex(cls, text: str) -> "Address":
        """Parse an address from ``0x``-prefixed (or bare) hex."""
        if text.startswith("0x") or text.startswith("0X"):
            text = text[2:]
        return cls(bytes.fromhex(text))

    @property
    def hex(self) -> str:
        return "0x" + self.raw.hex()

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        return self.hex

    def __repr__(self) -> str:  # pragma: no cover - repr convenience
        return f"Address({self.hex!r})"


def derive_address(public_key: bytes) -> Address:
    """Derive an account address from a public key (last 20 digest bytes)."""
    return Address(keccak(public_key)[-ADDRESS_SIZE:])


def contract_address(chain_id: int, creator: Address, creator_nonce: int) -> Address:
    """CREATE-style contract address.

    Unlike vanilla Ethereum, the creating blockchain's ``chain_id`` is
    mixed in (paper Section III-G) so identifiers never collide across
    chains and remain stable when the contract moves.
    """
    payload = (
        chain_id.to_bytes(8, "big")
        + creator.raw
        + creator_nonce.to_bytes(8, "big")
    )
    return Address(keccak(b"create1", payload)[-ADDRESS_SIZE:])


def create2_address(
    chain_id: int, creator: Address, salt: int, code_hash: bytes
) -> Address:
    """CREATE2-style deterministic contract address (EIP-1014 analogue).

    SCoin's origin attestation (Section V-A) relies on this: given a
    sibling account's salt, any ``SAccount`` can recompute the sibling's
    address from the shared parent address and code hash, proving both
    were created by the same token contract — one cheap hash, no Merkle
    proof needed.
    """
    payload = (
        chain_id.to_bytes(8, "big")
        + creator.raw
        + salt.to_bytes(32, "big")
        + code_hash
    )
    return Address(keccak(b"create2", payload)[-ADDRESS_SIZE:])


@dataclass
class KeyPair:
    """A client key pair.

    ``seed`` deterministically derives both the (simulated or real)
    private key and the public key; the address is derived from the
    public key with the shared rule, so — per Section III-G — the same
    key pair controls the same address on every chain.
    """

    seed: bytes
    public_key: bytes = field(init=False)
    address: Address = field(init=False)

    def __post_init__(self) -> None:
        self.public_key = keccak(b"pub", self.seed)
        self.address = derive_address(self.public_key)

    @classmethod
    def from_name(cls, name: str) -> "KeyPair":
        """Derive a key pair from a human-readable name (tests, demos)."""
        return cls(seed=keccak(b"seed", name.encode()))
