"""Hash functions.

All commitments in the substrate (block hashes, Merkle roots, addresses)
go through :func:`keccak`, which is SHA3-256 — the standardized sibling
of the Keccak-256 used by Ethereum.  Digests are 32 bytes.

Merkle-tree hashing is domain-separated: leaves and internal nodes are
hashed with distinct prefixes so that a proof cannot present an internal
node as a leaf (second-preimage attack on naive Merkle trees).
"""

from __future__ import annotations

import hashlib

DIGEST_SIZE = 32

_LEAF_PREFIX = b"\x00"
_NODE_PREFIX = b"\x01"


def keccak(*chunks: bytes) -> bytes:
    """Return the 32-byte SHA3-256 digest of the concatenated chunks."""
    h = hashlib.sha3_256()
    for chunk in chunks:
        h.update(chunk)
    return h.digest()


def keccak_hex(*chunks: bytes) -> str:
    """Hex form of :func:`keccak`, convenient for ids and logs."""
    return keccak(*chunks).hex()


def merkle_hash_leaf(payload: bytes) -> bytes:
    """Hash a Merkle-tree leaf (domain-separated)."""
    return keccak(_LEAF_PREFIX, payload)


def merkle_hash_node(left: bytes, right: bytes) -> bytes:
    """Hash an internal Merkle-tree node from its children's digests."""
    return keccak(_NODE_PREFIX, left, right)
