"""Hash functions.

All commitments in the substrate (block hashes, Merkle roots, addresses)
go through :func:`keccak`, which is SHA3-256 — the standardized sibling
of the Keccak-256 used by Ethereum.  Digests are 32 bytes.

Merkle-tree hashing is domain-separated: leaves and internal nodes are
hashed with distinct prefixes so that a proof cannot present an internal
node as a leaf (second-preimage attack on naive Merkle trees).
"""

from __future__ import annotations

import hashlib
from functools import lru_cache

DIGEST_SIZE = 32

_LEAF_PREFIX = b"\x00"
_NODE_PREFIX = b"\x01"

#: Inputs up to this many bytes go through the memo table.  Small
#: inputs are the repeated ones — storage-slot key derivations
#: (``keccak(map_base, account)``), address derivations, simulated
#: signatures — while big inputs (code blobs, proof bodies) are rarely
#: re-hashed and would only churn the cache.
_MEMO_MAX_LEN = 128

#: Bounded LRU: ~64k entries × (≤128 B key + 32 B digest) stays small
#: while covering every hot key-derivation in a simulation run.
_MEMO_SIZE = 65536


@lru_cache(maxsize=_MEMO_SIZE)
def _keccak_small(data: bytes) -> bytes:
    return hashlib.sha3_256(data).digest()


def keccak(*chunks: bytes) -> bytes:
    """Return the 32-byte SHA3-256 digest of the concatenated chunks.

    Small inputs are memoized (bounded LRU, thread-safe): the hot paths
    re-derive the same storage-slot keys and addresses millions of
    times per experiment, and a dict hit beats a SHA3 permutation by an
    order of magnitude.
    """
    if len(chunks) == 1:
        data = chunks[0]
    else:
        data = b"".join(chunks)
    if len(data) <= _MEMO_MAX_LEN:
        return _keccak_small(data)
    return hashlib.sha3_256(data).digest()


def keccak_memo_info():
    """Cache statistics of the small-input memo (for benchmarks)."""
    return _keccak_small.cache_info()


def keccak_hex(*chunks: bytes) -> str:
    """Hex form of :func:`keccak`, convenient for ids and logs."""
    return keccak(*chunks).hex()


def merkle_hash_leaf(payload: bytes) -> bytes:
    """Hash a Merkle-tree leaf (domain-separated)."""
    return keccak(_LEAF_PREFIX, payload)


def merkle_hash_node(left: bytes, right: bytes) -> bytes:
    """Hash an internal Merkle-tree node from its children's digests."""
    return keccak(_NODE_PREFIX, left, right)
