"""Cryptographic primitives used by the blockchain substrate.

The real systems modified by the paper (go-ethereum and Hyperledger
Burrow) use Keccak-256 and secp256k1/ed25519.  This reproduction uses
SHA3-256 (the standardized Keccak variant shipped with CPython) for all
hashing, a real pure-Python Ed25519 implementation for signatures, and a
fast hash-based :class:`~repro.crypto.signature.SimulatedSigner` for
large-scale simulations where per-transaction signature cost would only
slow the simulator down without changing any measured quantity.
"""

from repro.crypto.hashing import keccak, keccak_hex, merkle_hash_leaf, merkle_hash_node
from repro.crypto.keys import (
    Address,
    KeyPair,
    contract_address,
    create2_address,
    derive_address,
)
from repro.crypto.signature import Ed25519Signer, SimulatedSigner, Signer

__all__ = [
    "keccak",
    "keccak_hex",
    "merkle_hash_leaf",
    "merkle_hash_node",
    "Address",
    "KeyPair",
    "derive_address",
    "contract_address",
    "create2_address",
    "Signer",
    "Ed25519Signer",
    "SimulatedSigner",
]
