"""The load-signal plane: one typed interface over scattered statistics.

Before this module, every consumer that wanted to know "how loaded is
shard *i*" had to reach into a different subsystem with a different
shape: :class:`~repro.sharding.balancer.ShardLoadMonitor` exposed
``utilization(index)``, the telemetry registry held raw counters, the
parallel executor kept conflict counts on per-chain metrics, and the
gateway had queue-depth gauges.  The :class:`LoadSignal` protocol
unifies them: a signal names itself and reports **normalized per-shard
values** (and optionally per-contract values), and a
:class:`SignalPlane` composes any set of signals into one
:class:`ShardLoadView` snapshot — the only input the policy layer
(:mod:`repro.rebalance.policy`) ever sees.

Normalization convention: per-shard values are *capacity fractions*
(≈0 idle, ≈1 saturated) so signals compose by weighted sum; the default
weights are :data:`DEFAULT_WEIGHTS`.  Per-contract values are demand
rates (transactions per block, plus a scaled gas term) — they rank
contracts by hotness, so only their relative order matters.

Every signal here derives its values from public, deterministic inputs
(the block stream, the shared :class:`~repro.telemetry.metrics
.MetricsRegistry`), which is what keeps rebalancing decisions
replayable: same seed, same blocks, same view, same moves — at any
executor worker count.
"""

from __future__ import annotations

from collections import deque
from typing import (
    Callable,
    Deque,
    Dict,
    List,
    Mapping,
    Optional,
    Protocol,
    Tuple,
    runtime_checkable,
)

from repro.crypto.keys import Address
from repro.errors import ConfigError

#: default pressure weights per signal name; unknown names weigh 0.
#: Utilization is the primary load measure (it is already a capacity
#: fraction); conflict and queue pressure raise it when speculation
#: aborts or admission backs up.  ``tx_rate`` defaults to 0 because it
#: measures the same demand as utilization — it exists for deployments
#: (e.g. a gateway fleet) that have no block-stream monitor attached.
DEFAULT_WEIGHTS: Dict[str, float] = {
    "utilization": 1.0,
    "conflict": 0.5,
    "gateway_queue": 0.5,
    "tx_rate": 0.0,
    "hotness": 0.0,
}


@runtime_checkable
class LoadSignal(Protocol):
    """One named producer of per-shard (and per-contract) load values."""

    @property
    def name(self) -> str:
        """Stable signal name (keys :data:`DEFAULT_WEIGHTS`)."""
        ...

    def shard_values(self) -> Mapping[int, float]:
        """Current normalized value per shard index (may be empty)."""
        ...

    def contract_values(self) -> Mapping[Address, float]:
        """Current hotness per contract (empty for shard-only signals)."""
        ...


class ShardLoad:
    """One shard's composite load at a sampling instant."""

    __slots__ = ("shard", "signals", "pressure")

    def __init__(self, shard: int, signals: Dict[str, float], pressure: float):
        self.shard = shard
        #: raw per-signal values, by signal name
        self.signals = signals
        #: weighted composite (see :data:`DEFAULT_WEIGHTS`)
        self.pressure = pressure

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ShardLoad(shard={self.shard}, pressure={self.pressure:.3f})"


class ShardLoadView:
    """A composed snapshot of every shard's load — what policies consume.

    Everything is plain data: tests build views directly, and the policy
    layer never touches a subsystem object.
    """

    def __init__(
        self,
        at: float,
        shards: Dict[int, ShardLoad],
        contract_hotness: Optional[Dict[Address, float]] = None,
        contract_shard: Optional[Dict[Address, int]] = None,
        contract_read_rate: Optional[Dict[Address, float]] = None,
    ):
        self.at = at
        self.shards = shards
        self.contract_hotness = contract_hotness or {}
        self.contract_shard = contract_shard or {}
        #: replica-served reads/second per contract (from the replication
        #: manager's windowed counters) — feeds the policy's
        #: replicate-vs-move arm; empty when no read provider is wired.
        self.contract_read_rate = contract_read_rate or {}

    def pressure(self, shard: int) -> float:
        """Composite pressure of a shard (0.0 when unknown)."""
        load = self.shards.get(shard)
        return load.pressure if load is not None else 0.0

    def shard_ids(self) -> List[int]:
        """Known shard indices, ascending (deterministic iteration)."""
        return sorted(self.shards)

    def coolest(self, exclude: Tuple[int, ...] = ()) -> Optional[int]:
        """Least-pressured shard index, or None if all excluded."""
        candidates = [s for s in self.shard_ids() if s not in exclude]
        if not candidates:
            return None
        return min(candidates, key=lambda s: (self.shards[s].pressure, s))

    def hottest_contracts(self, shard: int) -> List[Tuple[Address, float]]:
        """Contracts living on ``shard`` ranked by hotness, descending.

        Ties break on the address bytes so the ranking is deterministic
        — a requirement for seed-exact decision replay.
        """
        ranked = [
            (address, score)
            for address, score in self.contract_hotness.items()
            if self.contract_shard.get(address) == shard
        ]
        ranked.sort(key=lambda item: (-item[1], item[0].raw))
        return ranked


class SignalPlane:
    """Composes attached :class:`LoadSignal` producers into views.

    ``locate`` maps a contract address to its current shard index (for
    clusters, :meth:`~repro.sharding.cluster.ShardedCluster
    .locate_contract`); without it views carry hotness but no placement,
    so policies cannot rank per-shard candidates.
    """

    def __init__(
        self,
        weights: Optional[Mapping[str, float]] = None,
        locate: Optional[Callable[[Address], Optional[int]]] = None,
        read_rates: Optional[Callable[[], Mapping[Address, float]]] = None,
    ):
        self.weights: Dict[str, float] = dict(DEFAULT_WEIGHTS)
        if weights:
            self.weights.update(weights)
        self._locate = locate
        #: optional provider of per-contract replica-read rates (e.g.
        #: ``ReplicationManager.read_rates``) — sampled into each view
        #: for the policy's replicate-vs-move arm.
        self._read_rates = read_rates
        self._signals: List[LoadSignal] = []

    def attach(self, signal: LoadSignal) -> LoadSignal:
        """Register a signal (unique name); returns it for chaining."""
        if any(existing.name == signal.name for existing in self._signals):
            raise ConfigError(f"a signal named {signal.name!r} is already attached")
        self._signals.append(signal)
        return signal

    def signal(self, name: str) -> Optional[LoadSignal]:
        """The attached signal with this name, if any."""
        for candidate in self._signals:
            if candidate.name == name:
                return candidate
        return None

    def signal_names(self) -> List[str]:
        """Names of attached signals, in attachment order."""
        return [signal.name for signal in self._signals]

    def sample(self, now: float) -> ShardLoadView:
        """One composed snapshot of every attached signal."""
        per_shard: Dict[int, Dict[str, float]] = {}
        hotness: Dict[Address, float] = {}
        for signal in self._signals:
            for shard, value in signal.shard_values().items():
                per_shard.setdefault(shard, {})[signal.name] = value
            for address, value in signal.contract_values().items():
                hotness[address] = hotness.get(address, 0.0) + value
        shards = {
            shard: ShardLoad(
                shard,
                values,
                sum(self.weights.get(name, 0.0) * v for name, v in values.items()),
            )
            for shard, values in per_shard.items()
        }
        contract_shard: Dict[Address, int] = {}
        if self._locate is not None:
            for address in hotness:
                location = self._locate(address)
                if location is not None:
                    contract_shard[address] = location
        read_rate: Dict[Address, float] = {}
        if self._read_rates is not None:
            read_rate = dict(self._read_rates())
        return ShardLoadView(
            at=now,
            shards=shards,
            contract_hotness=hotness,
            contract_shard=contract_shard,
            contract_read_rate=read_rate,
        )


class _ShardOnlySignal:
    """Base for signals with no per-contract component."""

    def contract_values(self) -> Mapping[Address, float]:
        return {}


def _tx_contract(payload, receipt) -> Optional[Address]:
    """The contract a transaction exercises, or None (plain transfers).

    Deliberately duck-typed on payload attribute names so the signal
    needs no import of every payload class: calls carry ``target``,
    Move1 carries ``contract``, Move2 carries ``bundle.contract`` and
    deploys surface the address through the receipt's return value.
    """
    target = getattr(payload, "target", None)
    if isinstance(target, Address):
        return target
    contract = getattr(payload, "contract", None)
    if isinstance(contract, Address):
        return contract
    bundle = getattr(payload, "bundle", None)
    if bundle is not None and isinstance(getattr(bundle, "contract", None), Address):
        return bundle.contract
    if receipt is not None and receipt.success:
        value = receipt.return_value
        if isinstance(value, Address):
            return value
        if isinstance(value, tuple) and value and isinstance(value[0], Address):
            return value[0]
    return None


class ContractHotnessSignal:
    """Per-contract demand from the public block stream, windowed.

    For every watched shard the signal keeps a sliding window of
    per-block ``contract -> (txs, gas)`` maps and reports each
    contract's hotness as ``txs/block + gas_scale * gas/block``.  It is
    also the registry producer for per-contract accounting: each
    observed transaction increments ``contract_txs_total`` /
    ``contract_gas_total`` counters (labelled by chain and contract) in
    the watched chain's :class:`~repro.telemetry.metrics
    .MetricsRegistry`, so exports and the CLI see per-contract demand
    without any extra instrumentation in the executor's hot path.
    """

    name = "hotness"

    def __init__(self, window_blocks: int = 8, gas_scale: float = 1e-6):
        if window_blocks <= 0:
            raise ConfigError("window_blocks must be positive")
        self.window_blocks = window_blocks
        self.gas_scale = gas_scale
        #: shard -> deque of per-block {contract: (txs, gas)}
        self._windows: Dict[int, Deque[Dict[Address, Tuple[int, int]]]] = {}
        self._counters: Dict[Tuple[int, Address], Tuple] = {}

    def watch(self, shard_index: int, chain) -> "ContractHotnessSignal":
        """Start deriving hotness from ``chain``'s block stream."""
        window: Deque[Dict[Address, Tuple[int, int]]] = deque(
            maxlen=self.window_blocks
        )
        self._windows[shard_index] = window
        metrics = chain.telemetry.metrics
        chain_id = chain.chain_id

        def on_block(block, receipts) -> None:
            fills: Dict[Address, Tuple[int, int]] = {}
            for tx, receipt in zip(block.transactions, receipts):
                address = _tx_contract(tx.payload, receipt)
                if address is None:
                    continue
                txs, gas = fills.get(address, (0, 0))
                fills[address] = (txs + 1, gas + receipt.gas_used)
                key = (chain_id, address)
                counters = self._counters.get(key)
                if counters is None:
                    counters = (
                        metrics.counter(
                            "contract_txs_total", chain=chain_id, contract=address.hex
                        ),
                        metrics.counter(
                            "contract_gas_total", chain=chain_id, contract=address.hex
                        ),
                    )
                    self._counters[key] = counters
                counters[0].inc()
                counters[1].inc(receipt.gas_used)
            window.append(fills)

        chain.subscribe(on_block)
        return self

    def shard_values(self) -> Mapping[int, float]:
        """Empty — hotness is a ranking signal, not shard pressure."""
        return {}

    def contract_values(self) -> Mapping[Address, float]:
        """Windowed hotness per contract across all watched shards."""
        merged: Dict[Address, float] = {}
        for window in self._windows.values():
            if not window:
                continue
            span = len(window)
            for fills in window:
                for address, (txs, gas) in fills.items():
                    merged[address] = merged.get(address, 0.0) + (
                        txs + self.gas_scale * gas
                    ) / span
        return merged

    def tx_rate(self, address: Address) -> float:
        """Windowed transactions/block for one contract (0.0 unknown)."""
        total = 0.0
        for window in self._windows.values():
            if not window:
                continue
            total += sum(fills.get(address, (0, 0))[0] for fills in window) / len(
                window
            )
        return total


class TxRateSignal(_ShardOnlySignal):
    """Per-shard transaction rate read back from the metrics registry.

    Samples each watched chain's ``chain_txs_total`` counters (both
    statuses) on every block and reports the windowed rate as a fraction
    of the chain's capacity (``max_block_txs / block_interval``) — the
    same 0..1 scale as utilization, but derived purely from the shared
    :class:`~repro.telemetry.metrics.MetricsRegistry`, so it works for
    components (like gateway replicas) that never see block bodies.
    """

    name = "tx_rate"

    def __init__(self, window: float = 60.0):
        if window <= 0:
            raise ConfigError("window must be positive")
        self.window = window
        #: shard -> (samples deque of (time, total), capacity tx/s)
        self._series: Dict[int, Tuple[Deque[Tuple[float, float]], float]] = {}

    def watch(self, shard_index: int, chain) -> "TxRateSignal":
        """Start sampling ``chain``'s tx counters on every block."""
        metrics = chain.telemetry.metrics
        chain_id = chain.chain_id
        capacity = chain.params.max_block_txs / chain.params.block_interval
        samples: Deque[Tuple[float, float]] = deque()
        self._series[shard_index] = (samples, capacity)

        def on_block(block, _receipts) -> None:
            total = metrics.value(
                "chain_txs_total", chain=chain_id, status="ok"
            ) + metrics.value("chain_txs_total", chain=chain_id, status="failed")
            samples.append((block.header.timestamp, total))
            horizon = block.header.timestamp - self.window
            while len(samples) > 2 and samples[1][0] <= horizon:
                samples.popleft()

        chain.subscribe(on_block)
        return self

    def shard_values(self) -> Mapping[int, float]:
        """Windowed tx rate per shard as a fraction of chain capacity."""
        values: Dict[int, float] = {}
        for shard, (samples, capacity) in self._series.items():
            if len(samples) < 2 or capacity <= 0:
                values[shard] = 0.0
                continue
            (t0, c0), (t1, c1) = samples[0], samples[-1]
            elapsed = t1 - t0
            values[shard] = ((c1 - c0) / elapsed / capacity) if elapsed > 0 else 0.0
        return values


class ConflictRateSignal(_ShardOnlySignal):
    """Speculation conflict/abort rate from the parallel executor.

    Reads the worker-count-independent ``executor_parallel_*`` counters:
    the reported value is ``reexecuted / speculated`` (0.0 for serial
    chains, which never speculate).  A hot shard whose transactions keep
    invalidating each other is a *better* move candidate than raw
    utilization suggests — conflicts burn speculation work that extra
    capacity cannot recover.
    """

    name = "conflict"

    def __init__(self) -> None:
        self._sources: Dict[int, Tuple] = {}

    def watch(self, shard_index: int, chain) -> "ConflictRateSignal":
        """Start reading ``chain``'s executor counters for this shard."""
        self._sources[shard_index] = (chain.telemetry.metrics, chain.chain_id)
        return self

    def shard_values(self) -> Mapping[int, float]:
        """Re-execution fraction per shard (0.0 for serial chains)."""
        values: Dict[int, float] = {}
        for shard, (metrics, chain_id) in self._sources.items():
            speculated = metrics.value(
                "executor_parallel_txs_speculated_total", chain=chain_id
            )
            reexecuted = metrics.value(
                "executor_parallel_txs_reexecuted_total", chain=chain_id
            )
            values[shard] = (reexecuted / speculated) if speculated > 0 else 0.0
        return values


class GatewayQueueSignal(_ShardOnlySignal):
    """Admission backpressure from a gateway's bounded queues.

    Reports each served chain's queued+parked depth as a fraction of the
    configured bound — 1.0 means the front door is shedding.  Values
    come from the gateway's public introspection surface
    (:meth:`~repro.gateway.gateway.Gateway.queue_depth` and its
    limits), not its internals.
    """

    name = "gateway_queue"

    def __init__(self, gateway, chain_to_shard: Optional[Mapping[int, int]] = None):
        self.gateway = gateway
        #: chain id -> shard index (default: chain_id - 1, the cluster
        #: convention)
        self._chain_to_shard = dict(chain_to_shard) if chain_to_shard else None

    def shard_values(self) -> Mapping[int, float]:
        """Queue depth per shard as a fraction of the admission bound."""
        limits = self.gateway.limits
        bound = limits.max_queue_depth + limits.max_blocked
        values: Dict[int, float] = {}
        for chain_id in self.gateway.node.chains:
            if self._chain_to_shard is not None:
                shard = self._chain_to_shard.get(chain_id)
                if shard is None:
                    continue
            else:
                shard = chain_id - 1
            depth = self.gateway.queue_depth(chain_id)
            values[shard] = depth / bound if bound > 0 else 0.0
        return values
