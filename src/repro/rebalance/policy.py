"""The rebalancing decision engine.

Generalizes the single-rule client-side
:class:`~repro.sharding.balancer.LoadBalancingPolicy` (move off a hot
shard, once) into a control-loop policy that can run forever without
thrashing:

* **hysteresis** — a shard becomes *hot* when its composite pressure
  reaches ``hot_enter`` and only stops being hot once pressure falls to
  ``hot_exit``; load oscillating around a single threshold therefore
  cannot flap decisions on and off every tick;
* **cooldowns** — a moved contract is ineligible again for
  ``contract_cooldown`` seconds (counted from *issue*, so even a failed
  move cannot retry in a tight loop), and a shard that just shed
  contracts is left alone for ``shard_cooldown`` seconds so the signal
  window can refill with post-move data before more is taken from it;
* **in-flight accounting** — issued-but-unfinished moves are tracked;
  a contract already moving is never double-moved, and the global
  ``max_inflight`` bound caps concurrent migrations;
* **bounded aggression** — at most ``max_moves_per_tick`` decisions per
  evaluation, which is what the benchmark's no-thrash gate measures;
* **determinism** — candidate ranking breaks ties on address bytes and
  the target shard among all sufficiently-cooler shards is picked by a
  keccak draw keyed on the contract address (the same owner-keyed
  fan-out rule as the decentralized client policy, so simultaneous
  movers spread out instead of stampeding onto the single coolest
  shard).  Decisions are a pure function of (view sequence, clock),
  hence replayable byte-for-byte under a fixed seed.

The policy never touches chains, clocks or signals: it consumes
:class:`~repro.rebalance.signals.ShardLoadView` snapshots and emits
:class:`MoveDecision` values.  The :class:`~repro.rebalance.rebalancer
.Rebalancer` owns sampling and actuation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.crypto.keys import Address
from repro.errors import ConfigError
from repro.crypto.hashing import keccak
from repro.rebalance.signals import ShardLoadView


@dataclass(frozen=True)
class MoveDecision:
    """One autonomous rebalancing verdict for a contract.

    ``action`` selects the mechanism: ``"move"`` migrates the contract
    to the target shard (the Move protocol), ``"replicate"`` leaves it
    in place and puts a read-only replica on the target shard instead —
    the right call for a contract whose heat is read traffic that a
    mirror can serve (``docs/REPLICATION.md``).
    """

    contract: Address
    source_shard: int
    target_shard: int
    #: the contract's hotness score at decision time
    score: float
    #: the source shard's composite pressure at decision time
    pressure: float
    decided_at: float
    #: ``"move"`` (relocate the active copy) or ``"replicate"``
    action: str = "move"


def spread_target(contract: Address, candidates: Sequence[int]) -> int:
    """Deterministic owner-keyed pick among candidate target shards.

    Every observer computes the same answer from public data, and a
    crowd of simultaneous movers fans out across all candidates instead
    of stampeding onto one — the property that makes Move-based load
    balancing *decentralized* (paper §IV-B).
    """
    if not candidates:
        raise ValueError("no candidate target shards")
    digest = keccak(b"rebalance", contract.raw)
    return candidates[int.from_bytes(digest[:8], "big") % len(candidates)]


class RebalancePolicy:
    """Hysteresis + cooldown + in-flight-aware decision engine."""

    def __init__(
        self,
        hot_enter: float = 0.8,
        hot_exit: float = 0.5,
        min_gap: float = 0.3,
        contract_cooldown: float = 300.0,
        shard_cooldown: float = 60.0,
        max_moves_per_tick: int = 4,
        max_inflight: int = 8,
        min_score: float = 0.0,
        replicate_read_ratio: float = 0.0,
    ):
        if not 0.0 < hot_enter:
            raise ConfigError("hot_enter must be positive")
        if not 0.0 <= hot_exit <= hot_enter:
            raise ConfigError("hot_exit must lie in [0, hot_enter]")
        if min_gap <= 0.0:
            raise ConfigError("min_gap must be positive")
        if contract_cooldown < 0.0 or shard_cooldown < 0.0:
            raise ConfigError("cooldowns must be non-negative")
        if max_moves_per_tick < 1:
            raise ConfigError("max_moves_per_tick must be at least 1")
        if max_inflight < 1:
            raise ConfigError("max_inflight must be at least 1")
        if replicate_read_ratio < 0.0:
            raise ConfigError("replicate_read_ratio must be non-negative")
        self.hot_enter = hot_enter
        self.hot_exit = hot_exit
        self.min_gap = min_gap
        self.contract_cooldown = contract_cooldown
        self.shard_cooldown = shard_cooldown
        self.max_moves_per_tick = max_moves_per_tick
        self.max_inflight = max_inflight
        self.min_score = min_score
        #: the replicate-vs-move arm: a hot contract whose replica-read
        #: rate is at least this multiple of its (write) hotness score
        #: is *replicated* to the target shard instead of moved — reads
        #: fan out to the mirror while writes stay put.  0.0 disables
        #: the arm (every decision is a move, the pre-replication
        #: behavior).
        self.replicate_read_ratio = replicate_read_ratio
        #: hysteresis latch per shard
        self._hot: Dict[int, bool] = {}
        #: contract -> simulated time before which it may not move again
        self._contract_cooldown_until: Dict[Address, float] = {}
        #: shard -> simulated time before which no more moves leave it
        self._shard_cooldown_until: Dict[int, float] = {}
        #: issued but unfinished moves
        self._inflight: Dict[Address, MoveDecision] = {}

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------

    def is_hot(self, shard: int) -> bool:
        """Current hysteresis latch state of a shard."""
        return self._hot.get(shard, False)

    @property
    def inflight(self) -> Dict[Address, MoveDecision]:
        """Issued-but-unfinished moves (copy; keyed by contract)."""
        return dict(self._inflight)

    def cooldown_remaining(self, contract: Address, now: float) -> float:
        """Seconds until ``contract`` may move again (0.0 = eligible)."""
        return max(0.0, self._contract_cooldown_until.get(contract, 0.0) - now)

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------

    def decide(self, view: ShardLoadView, now: float) -> List[MoveDecision]:
        """Evaluate one snapshot; returns the moves to issue now.

        The caller must report every issued decision via
        :meth:`note_issued` and its outcome via :meth:`note_finished` —
        that is what keeps the in-flight table honest across ticks.
        """
        self._update_latches(view)
        budget = min(
            self.max_moves_per_tick, self.max_inflight - len(self._inflight)
        )
        if budget <= 0:
            return []
        decisions: List[MoveDecision] = []
        hot_shards = [
            shard
            for shard in view.shard_ids()
            if self._hot.get(shard, False)
            and now >= self._shard_cooldown_until.get(shard, 0.0)
        ]
        # Hottest first; index breaks pressure ties deterministically.
        hot_shards.sort(key=lambda s: (-view.shards[s].pressure, s))
        for shard in hot_shards:
            if budget <= 0:
                break
            pressure = view.shards[shard].pressure
            cool = [
                target
                for target in view.shard_ids()
                if target != shard
                and not self._hot.get(target, False)
                and view.shards[target].pressure <= pressure - self.min_gap
            ]
            if not cool:
                continue
            issued_here = 0
            for contract, score in view.hottest_contracts(shard):
                if budget <= 0:
                    break
                if score < self.min_score:
                    break  # ranking is descending; nothing hotter follows
                if contract in self._inflight:
                    continue
                if now < self._contract_cooldown_until.get(contract, 0.0):
                    continue
                decisions.append(
                    MoveDecision(
                        contract=contract,
                        source_shard=shard,
                        target_shard=spread_target(contract, cool),
                        score=score,
                        pressure=pressure,
                        decided_at=now,
                        action=self._pick_action(view, contract, score),
                    )
                )
                budget -= 1
                issued_here += 1
            if issued_here and self.shard_cooldown > 0.0:
                self._shard_cooldown_until[shard] = now + self.shard_cooldown
        return decisions

    def _pick_action(
        self, view: ShardLoadView, contract: Address, score: float
    ) -> str:
        """Replicate-vs-move: a read-dominated hot contract is cheaper
        to mirror than to migrate.

        The hotness score measures transaction (write) demand from the
        block stream; ``view.contract_read_rate`` carries replica-served
        reads/second.  When reads outweigh writes by at least
        ``replicate_read_ratio``, moving the contract would just chase
        its readers — a replica on the cool shard absorbs them instead,
        within the staleness bound.  Deterministic: a pure function of
        the view, like every other decision input.
        """
        if self.replicate_read_ratio <= 0.0:
            return "move"
        read_rate = view.contract_read_rate.get(contract, 0.0)
        if read_rate <= 0.0:
            return "move"
        if read_rate >= self.replicate_read_ratio * max(score, 1e-9):
            return "replicate"
        return "move"

    def _update_latches(self, view: ShardLoadView) -> None:
        for shard in view.shard_ids():
            pressure = view.shards[shard].pressure
            if self._hot.get(shard, False):
                if pressure <= self.hot_exit:
                    self._hot[shard] = False
            elif pressure >= self.hot_enter:
                self._hot[shard] = True

    # ------------------------------------------------------------------
    # In-flight accounting
    # ------------------------------------------------------------------

    def note_issued(self, decision: MoveDecision, now: float) -> None:
        """Record that a decision was actually actuated.

        The contract cooldown starts at *issue* time: even if the move
        later fails, the contract cannot be re-decided within the
        window, so a persistent failure degrades to one attempt per
        cooldown instead of a retry storm.
        """
        self._inflight[decision.contract] = decision
        if self.contract_cooldown > 0.0:
            self._contract_cooldown_until[decision.contract] = (
                now + self.contract_cooldown
            )

    def note_finished(
        self, contract: Address, success: bool, now: float
    ) -> Optional[MoveDecision]:
        """Close out an in-flight move; returns its decision, if known."""
        return self._inflight.pop(contract, None)
