"""Autonomous Move-based rebalancing: the paper's future work, closed.

The conclusion of *Smart Contracts on the Move* names "decentralized
load balancing smart contracts for sharded blockchains" as the
application the Move primitive enables.  This package is that control
plane, split into the three layers docs/REBALANCING.md describes:

* **signals** (:mod:`repro.rebalance.signals`) — one typed
  :class:`LoadSignal` interface over every load statistic the system
  already produces (block-fill utilization, per-contract tx/gas rates,
  speculative-execution conflict rates, gateway queue depths), composed
  into :class:`ShardLoadView` snapshots by a :class:`SignalPlane`;
* **policy** (:mod:`repro.rebalance.policy`) — the
  :class:`RebalancePolicy` engine: hysteresis (enter/exit thresholds),
  per-contract and per-shard cooldown windows, hotness ranking and
  in-flight-move accounting, with the deterministic owner-keyed
  tiebreak that keeps the scheme decentralized;
* **actuation** (:mod:`repro.rebalance.rebalancer`) — the
  :class:`Rebalancer` driver: watches signals on the simulated clock,
  issues Move transactions through the existing bridge/gateway
  choreography, and records ``rebalance.*`` traces and ``rebalance_*``
  metrics.

``benchmarks/bench_ablation_rebalance.py`` closes the loop end to end:
on a skewed SCoin workload, auto-rebalancing beats static hash
partitioning on both throughput and p99 latency without thrashing.
"""

from repro.rebalance.policy import MoveDecision, RebalancePolicy
from repro.rebalance.rebalancer import (
    Rebalancer,
    bridge_actuator,
    gateway_actuator,
    replication_actuator,
)
from repro.rebalance.signals import (
    DEFAULT_WEIGHTS,
    ConflictRateSignal,
    ContractHotnessSignal,
    GatewayQueueSignal,
    LoadSignal,
    ShardLoad,
    ShardLoadView,
    SignalPlane,
    TxRateSignal,
)

__all__ = [
    "LoadSignal",
    "ShardLoad",
    "ShardLoadView",
    "SignalPlane",
    "DEFAULT_WEIGHTS",
    "ContractHotnessSignal",
    "TxRateSignal",
    "ConflictRateSignal",
    "GatewayQueueSignal",
    "MoveDecision",
    "RebalancePolicy",
    "Rebalancer",
    "bridge_actuator",
    "gateway_actuator",
    "replication_actuator",
]
