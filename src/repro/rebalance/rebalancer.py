"""The actuation layer: a driver that closes the rebalancing loop.

The :class:`Rebalancer` periodically samples a
:class:`~repro.rebalance.signals.SignalPlane` on the simulated clock,
asks a :class:`~repro.rebalance.policy.RebalancePolicy` what to do, and
issues the resulting Moves through an *actuator* — a plain callable, so
the same driver works over the raw :class:`~repro.ibc.bridge.IBCBridge`
(:func:`bridge_actuator`), through the gateway's admission path
(:func:`gateway_actuator`), or against workload-level relocation hooks
(:meth:`~repro.workload.clients.ScoinWorkload.relocate_actuator`).

Observability and failure handling:

* every evaluation increments ``rebalance_ticks_total``; every issued
  decision appends a plain-dict entry to :attr:`Rebalancer.decision_log`
  (JSON-serializable — the byte-identical replay gate in CI compares
  these), increments ``rebalance_decisions_total`` and opens a
  ``rebalance.move`` trace carrying a ``rebalance.decide`` event;
* outcomes land in ``rebalance_moves_total{status=ok|failed|timeout|
  error|skipped}`` and close the trace; ``rebalance_inflight`` tracks
  concurrent migrations;
* a move that neither completes nor fails within ``move_timeout`` is
  written off as ``timeout`` so the policy's in-flight table cannot
  leak slots (a late completion after the write-off is ignored);
* an actuator that *raises* is caught and recorded as ``error`` — a
  broken actuation path degrades the control loop to observation, it
  never crashes block production.

Start/stop uses the same epoch-guarded timer pattern as
:class:`~repro.node.node.Node` block production, so a stop()/start()
cycle can never leave two concurrent tick chains running.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.crypto.keys import Address, KeyPair
from repro.errors import ConfigError
from repro.rebalance.policy import MoveDecision, RebalancePolicy
from repro.rebalance.signals import SignalPlane
from repro.telemetry import Telemetry

#: issues one decision; must eventually call ``done(success)`` exactly once
Actuator = Callable[[MoveDecision, Callable[[bool], None]], None]


class Rebalancer:
    """Watches the signal plane and autonomously issues Moves."""

    def __init__(
        self,
        sim,
        plane: SignalPlane,
        policy: Optional[RebalancePolicy] = None,
        actuator: Optional[Actuator] = None,
        interval: float = 20.0,
        move_timeout: float = 120.0,
        telemetry: Optional[Telemetry] = None,
    ):
        if interval <= 0:
            raise ConfigError("interval must be positive")
        if move_timeout <= 0:
            raise ConfigError("move_timeout must be positive")
        self.sim = sim
        self.plane = plane
        self.policy = policy if policy is not None else RebalancePolicy()
        #: None = dry-run: decisions are logged (and cooldowns charged)
        #: but no Move is issued — useful for observing a policy live.
        self.actuator = actuator
        self.interval = interval
        self.move_timeout = move_timeout
        self.telemetry = telemetry if telemetry is not None else Telemetry.disabled()
        metrics = self.telemetry.metrics
        self._m_ticks = metrics.counter("rebalance_ticks_total")
        self._m_decisions = metrics.counter("rebalance_decisions_total")
        self._m_inflight = metrics.gauge("rebalance_inflight")
        self._m_moves: Dict[str, Any] = {}
        #: JSON-serializable record of every decision and its outcome —
        #: the replay-determinism artifact.  Entries gain ``status`` and
        #: ``finished_at`` when their move settles.
        self.decision_log: List[Dict[str, Any]] = []
        self._running = False
        self._epoch = 0
        self._ticks = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._running

    @property
    def ticks(self) -> int:
        """Completed policy evaluations since construction."""
        return self._ticks

    def start(self) -> None:
        """Begin periodic evaluation (idempotent, restart-safe)."""
        if self._running:
            return
        self._running = True
        self._epoch += 1
        self._schedule(self._epoch)

    def stop(self) -> None:
        """Halt evaluation; in-flight moves still settle and report."""
        self._running = False

    def _schedule(self, epoch: int) -> None:
        self.sim.schedule(self.interval, lambda: self._tick(epoch))

    def _tick(self, epoch: int) -> None:
        if not self._running or epoch != self._epoch:
            return
        self.evaluate()
        self._schedule(epoch)

    # ------------------------------------------------------------------
    # One control-loop iteration (public so tests/benches can step it)
    # ------------------------------------------------------------------

    def evaluate(self) -> List[MoveDecision]:
        """Sample → decide → actuate, once; returns the decisions."""
        self._ticks += 1
        self._m_ticks.inc()
        now = self.sim.now
        view = self.plane.sample(now)
        decisions = self.policy.decide(view, now)
        for decision in decisions:
            self._issue(decision)
        return decisions

    def _issue(self, decision: MoveDecision) -> None:
        entry: Dict[str, Any] = {
            "tick": self._ticks,
            "at": decision.decided_at,
            "contract": decision.contract.hex,
            "source": decision.source_shard,
            "target": decision.target_shard,
            "score": decision.score,
            "pressure": decision.pressure,
            "action": decision.action,
        }
        self.decision_log.append(entry)
        self._m_decisions.inc()
        self.policy.note_issued(decision, decision.decided_at)
        self._m_inflight.set(len(self.policy.inflight))
        span = self.telemetry.tracer.start_trace(
            "rebalance.move",
            contract=decision.contract.hex,
            source=decision.source_shard,
            target=decision.target_shard,
            action=decision.action,
        )
        span.event(
            "rebalance.decide",
            score=decision.score,
            pressure=decision.pressure,
        )
        settled = [False]

        def finish(success: bool, status: Optional[str] = None) -> None:
            if settled[0]:
                return  # late completion after a timeout write-off
            settled[0] = True
            outcome = status if status is not None else ("ok" if success else "failed")
            entry["status"] = outcome
            entry["finished_at"] = self.sim.now
            self.policy.note_finished(decision.contract, success, self.sim.now)
            self._m_inflight.set(len(self.policy.inflight))
            counter = self._m_moves.get(outcome)
            if counter is None:
                counter = self.telemetry.metrics.counter(
                    "rebalance_moves_total", status=outcome
                )
                self._m_moves[outcome] = counter
            counter.inc()
            span.end(status=outcome)

        if self.actuator is None:
            finish(False, status="skipped")
            return
        self.sim.schedule(
            self.move_timeout, lambda: finish(False, status="timeout")
        )
        try:
            self.actuator(decision, finish)
        except Exception as exc:  # degrade, never crash the clock
            span.event("rebalance.actuate_error", error=repr(exc))
            finish(False, status="error")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def moves(self, status: Optional[str] = None) -> List[Dict[str, Any]]:
        """Settled decision-log entries, optionally by outcome status."""
        settled = [e for e in self.decision_log if "status" in e]
        if status is None:
            return settled
        return [e for e in settled if e["status"] == status]


MoverFor = Callable[[Address], Optional[KeyPair]]


def bridge_actuator(
    bridge,
    mover_for: MoverFor,
    shard_to_chain: Callable[[int], int] = lambda index: index + 1,
) -> Actuator:
    """Actuate decisions over a raw :class:`~repro.ibc.bridge.IBCBridge`.

    ``mover_for`` resolves the keypair authorized to move a contract
    (its owner); returning None fails the decision gracefully — the
    policy's cooldown then prevents an immediate retry.
    """

    def actuate(decision: MoveDecision, done: Callable[[bool], None]) -> None:
        mover = mover_for(decision.contract)
        if mover is None:
            done(False)
            return
        bridge.move_contract(
            mover,
            decision.contract,
            source_id=shard_to_chain(decision.source_shard),
            target_id=shard_to_chain(decision.target_shard),
            on_done=lambda phases: done(bool(phases.success)),
        )

    return actuate


def gateway_actuator(
    gateway,
    mover_for: MoverFor,
    shard_to_chain: Callable[[int], int] = lambda index: index + 1,
    client_id: str = "rebalancer",
) -> Actuator:
    """Actuate decisions through the gateway's admission path.

    Moves issued this way compete with client traffic for queue slots,
    so under overload the control loop sheds before user requests do —
    a gateway-level ``QueueFull`` lands in the handle and reports as a
    failed move, not an exception.
    """

    def actuate(decision: MoveDecision, done: Callable[[bool], None]) -> None:
        mover = mover_for(decision.contract)
        if mover is None:
            done(False)
            return
        handle = gateway.move(
            mover,
            decision.contract,
            shard_to_chain(decision.source_shard),
            shard_to_chain(decision.target_shard),
            client_id=client_id,
        )
        handle.on_done(lambda h: done(h.ok))

    return actuate


def replication_actuator(
    manager,
    move_actuator: Optional[Actuator] = None,
    shard_to_chain: Callable[[int], int] = lambda index: index + 1,
) -> Actuator:
    """Actuate the policy's replicate-vs-move arm.

    ``"replicate"`` decisions place a read-only mirror of the contract
    on the target shard through a
    :class:`~repro.replicate.manager.ReplicationManager` (the contract's
    active copy stays put; the relay syncs the mirror asynchronously).
    ``"move"`` decisions delegate to ``move_actuator`` — typically
    :func:`bridge_actuator` or :func:`gateway_actuator` — or fail
    gracefully when none is wired (the cooldown then throttles retries,
    same as a mover-less bridge actuation).
    """

    def actuate(decision: MoveDecision, done: Callable[[bool], None]) -> None:
        if decision.action != "replicate":
            if move_actuator is None:
                done(False)
                return
            move_actuator(decision, done)
            return
        source_id = shard_to_chain(decision.source_shard)
        target_id = shard_to_chain(decision.target_shard)
        try:
            manager.replicate(decision.contract, source_id, [target_id])
        except Exception:
            done(False)
            return
        done(True)

    return actuate
