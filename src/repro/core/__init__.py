"""The paper's contribution: the Move protocol.

* :mod:`repro.core.proofs` — the contract state proof bundle a client
  assembles at the source chain and ships inside a Move2 transaction;
* :mod:`repro.core.move` — Move1/Move2 semantics (Algorithm 1),
  including the lock field ``L_c``, the ``VS``/``VP`` checks and the
  move-nonce replay guard (Fig. 2);
* :mod:`repro.core.relay` — the currency relay built *on top of* the
  primitive (Section III-F, Fig. 3): lock native currency on the source
  chain, mint a provably-backed token on the target chain;
* :mod:`repro.core.locator` — client-side contract discovery by
  following the ``L_c`` trail (Section III-G).
"""

from repro.core.move import apply_move1, apply_move2, validate_move2
from repro.core.proofs import ContractStateProof, build_contract_proof
from repro.core.locator import ContractLocator

__all__ = [
    "apply_move1",
    "apply_move2",
    "validate_move2",
    "ContractStateProof",
    "build_contract_proof",
    "ContractLocator",
]
