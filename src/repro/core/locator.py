"""Client-side contract discovery (paper Section III-G b).

``L_c`` has two logical states: "here" or "moved to chain X".  A client
that lost track of a contract follows the trail: query the last known
chain; if the record says it moved, hop to the named chain; repeat.
With correctly implemented ``moveTo``/``moveFinish`` the trail always
terminates at the active copy.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.crypto.keys import Address
from repro.errors import StateError

#: callback: chain_id -> (exists, location) for a contract address
LocationQuery = Callable[[int, Address], Optional[int]]


class ContractLocator:
    """Follows the ``L_c`` trail across a set of queryable chains.

    ``query(chain_id, address)`` must return the contract's ``L_c`` as
    recorded on that chain, or ``None`` when the chain has no record.
    """

    def __init__(self, query: LocationQuery, max_hops: int = 16):
        self._query = query
        self._max_hops = max_hops

    @classmethod
    def over_chains(cls, chains, max_hops: int = 16) -> "ContractLocator":
        """Locator backed by live :class:`~repro.chain.chain.Chain`
        objects (a client holding light connections to each)."""
        by_id = {chain.chain_id: chain for chain in chains}

        def query(chain_id: int, address: Address) -> Optional[int]:
            chain = by_id.get(chain_id)
            if chain is None:
                return None
            return chain.location_of(address)

        return cls(query, max_hops=max_hops)

    def locate(self, address: Address, start_chain: int) -> int:
        """Return the chain id where the contract is currently active.

        Raises :class:`StateError` when no chain on the trail knows the
        contract or the trail does not terminate (cycle without an
        active copy — impossible with correct hooks, but bounded here).
        """
        chain = start_chain
        seen: Dict[int, int] = {}
        for _hop in range(self._max_hops):
            location = self._query(chain, address)
            if location is None:
                raise StateError(
                    f"chain {chain} has no record of contract {address}"
                )
            if location == chain:
                return chain
            if seen.get(chain) == location:
                raise StateError(
                    f"location trail cycles between {chain} and {location} "
                    "without an active copy (incomplete move?)"
                )
            seen[chain] = location
            chain = location
        raise StateError(f"location trail exceeded {self._max_hops} hops")
