"""Contract state proof bundles (the ``V ↦ m`` of Algorithm 1).

A Move2 transaction must let the target chain reconstruct the contract
*provably*: the bundle carries the contract's full storage, code,
balance, location and move nonce, plus a Merkle membership proof of the
contract's account leaf under a state root ``m`` of the source chain.
The verifier recomputes the storage root canonically from the raw
storage, recomputes the code hash from the raw code, re-encodes the
account leaf, and checks the membership proof against ``m`` — so no
field can be tampered with independently.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Tuple

from repro.crypto.hashing import keccak
from repro.crypto.keys import Address
from repro.errors import ProofError
from repro.merkle.proof import MembershipProof, verify_proof
from repro.merkle.protocol import TreeFactory
from repro.statedb.state import (
    WorldState,
    compute_storage_root,
    encode_contract_leaf,
    ContractRecord,
)


@dataclass(frozen=True)
class ContractStateProof:
    """Everything Move2 needs to recreate contract ``contract``.

    ``proof_height`` is the *source-chain header height* whose
    ``state_root`` commits this bundle (on Burrow-flavoured chains that
    is one block after the state was produced, per the lag quirk).
    """

    source_chain: int
    contract: Address
    code: bytes
    storage: Dict[bytes, bytes]
    balance: int
    location: int
    move_nonce: int
    account_proof: MembershipProof
    proof_height: int

    def signing_fields(self) -> Tuple[Any, ...]:
        """The tuple canonically encoded when a Move2 is signed."""
        return (
            "contract-proof",
            self.source_chain,
            self.contract,
            self.code,
            sorted(self.storage.items()),
            self.balance,
            self.location,
            self.move_nonce,
            self.account_proof.computed_root(),
            self.proof_height,
        )

    def size_bytes(self) -> int:
        """Approximate serialized size — drives Move2 verification gas
        and models the bandwidth cost of moving large state."""
        storage_bytes = sum(len(k) + len(v) for k, v in self.storage.items())
        return len(self.code) + storage_bytes + self.account_proof.size_bytes()

    def verify_against_root(
        self, trusted_root: bytes, tree_factory: TreeFactory
    ) -> bool:
        """``VP(V ↦ m)``: does this bundle reconstruct ``trusted_root``?

        ``tree_factory`` must be the *source* chain's tree flavour so
        the storage root is rebuilt the way the source committed it.
        This is deliberately the canonical from-scratch rebuild
        (:func:`~repro.statedb.state.compute_storage_root`) — the
        verifier-side reference the source's incremental commit path is
        required to match bit-for-bit.
        """
        if self.account_proof.key != self.contract.raw:
            return False
        record = ContractRecord(
            code_hash=keccak(self.code),
            location=self.location,
            balance=self.balance,
            move_nonce=self.move_nonce,
            storage=dict(self.storage),
        )
        storage_root = compute_storage_root(tree_factory, record.storage)
        expected_leaf = encode_contract_leaf(record, storage_root)
        if self.account_proof.value != expected_leaf:
            return False
        return verify_proof(self.account_proof, trusted_root)


@dataclass(frozen=True)
class RemoteStateProof:
    """Proof of a single *storage entry* of a contract on another chain.

    The generic attestation primitive Section V-A alludes to ("a more
    generic method could be devised using Merkle proofs with the same
    proposed interfaces"): prove that contract ``container`` on
    ``chain_id`` maps ``storage key -> value`` at ``height``.

    Verification chains two membership proofs: the storage-entry proof
    reconstructs a storage root; the account proof's leaf must embed
    exactly that storage root (it is the trailing 32 bytes of the
    canonical contract-leaf encoding); and the account proof must
    reconstruct a state root the verifier's light client confirms.
    """

    chain_id: int
    height: int
    container: Address
    account_proof: MembershipProof
    storage_proof: MembershipProof

    def signing_fields(self) -> Tuple[Any, ...]:
        """The tuple canonically encoded when carried in a call."""
        return (
            "remote-state-proof",
            self.chain_id,
            self.height,
            self.container,
            self.account_proof.computed_root(),
            self.storage_proof.key,
            self.storage_proof.value,
        )

    def size_bytes(self) -> int:
        """Serialized size (drives the verification gas charge)."""
        return self.account_proof.size_bytes() + self.storage_proof.size_bytes()

    @property
    def key(self) -> bytes:
        return self.storage_proof.key

    @property
    def value(self) -> bytes:
        return self.storage_proof.value

    def verify(self, light_client) -> bool:
        """Full check against a light client's confirmed headers."""
        if self.account_proof.key != self.container.raw:
            return False
        leaf = self.account_proof.value
        if len(leaf) < 33 or not leaf.startswith(b"C"):
            return False
        committed_storage_root = leaf[-32:]
        if self.storage_proof.computed_root() != committed_storage_root:
            return False
        state_root = self.account_proof.computed_root()
        return light_client.valid_state_root(self.chain_id, self.height, state_root)


def build_contract_proof(
    state: WorldState,
    address: Address,
    code: bytes,
    proof_height: int,
) -> ContractStateProof:
    """Assemble the proof bundle from a chain's *committed* state.

    The caller (a client's light machinery, or the chain facade) is
    responsible for passing the ``proof_height`` whose header carries
    ``state.committed_root`` — and for only doing so once that height
    is ``p`` blocks behind the source head.
    """
    record = state.contract(address)
    if record is None:
        raise ProofError(f"no contract at {address}")
    if keccak(code) != record.code_hash:
        raise ProofError("provided code does not match the contract's code hash")
    account_proof = state.prove_account(address)
    bundle = ContractStateProof(
        source_chain=state.chain_id,
        contract=address,
        code=code,
        storage=dict(record.storage),
        balance=record.balance,
        location=record.location,
        move_nonce=record.move_nonce,
        account_proof=account_proof,
        proof_height=proof_height,
    )
    if not bundle.verify_against_root(state.committed_root, state.tree_factory):
        raise ProofError(
            "proof bundle does not verify against the committed root — "
            "the contract changed since the last commit"
        )
    return bundle
