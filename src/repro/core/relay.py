"""Currency relay: transferring native currency across chains (§III-F).

Fig. 3's choreography, built purely on the Move primitive:

1. ``client1`` calls ``CurrencyRelay.create(target, recipient)`` on the
   source chain with ``e`` units of value attached.  The relay creates
   a :class:`RelayedFunds` contract ``r`` holding ``e`` and ``r``
   executes **OP_MOVE on creation** — it is born locked toward the
   target chain, so the ``e`` units can never be spent at the source.
2. Anyone (normally ``client2``) ships the Move2 proof of ``r`` to the
   target chain, recreating ``r`` there.
3. ``client2`` calls ``mint()`` on ``r``: the locked source currency is
   now represented by ``minted`` pegged tokens at the target —
   "provably backed by e" in the paper's words.
4. To unlock, the recipient burns the pegged tokens (``burn()``), moves
   ``r`` back to the source chain, and calls ``redeem()`` there, which
   pays out the original ``e`` in native currency.
"""

from __future__ import annotations

from repro.crypto.keys import Address
from repro.lang.movable import MovableContract
from repro.runtime.contract import Contract, Slot, external, payable, require, view
from repro.runtime.registry import register_contract


@register_contract
class RelayedFunds(MovableContract):
    """The movable escrow ``r`` of Fig. 3."""

    home_chain = Slot(int)
    amount = Slot(int)
    minted = Slot(int)

    def init(self, recipient: Address, target_chain: int) -> None:
        """Escrow ``msg.value`` and lock toward the target chain."""
        self.owner = recipient
        self.home_chain = self.chain_id
        self.amount = self.msg.value
        # Fig. 3: "it executes Move1(Bj) on creation" — born locked.
        self.op_move(target_chain)

    @view
    def locked_amount(self) -> int:
        """The escrowed native units."""
        return self.amount

    @view
    def minted_amount(self) -> int:
        """Live pegged tokens (0 before mint / after burn)."""
        return self.minted

    @external
    def mint(self) -> int:
        """At the target chain: issue pegged tokens backed by the
        currency locked at the home chain (Fig. 3's ``Tmint``)."""
        require(self.msg.sender == self.owner, "only the recipient mints")
        require(self.chain_id != self.home_chain, "mint only away from home")
        require(self.minted == 0, "already minted")
        self.minted = self.amount
        self.emit("Minted", amount=self.amount)
        return self.minted

    @external
    def burn(self) -> None:
        """Destroy the pegged tokens, making the escrow movable home
        without double representation."""
        require(self.msg.sender == self.owner, "only the recipient burns")
        self.minted = 0

    @external
    def redeem(self) -> int:
        """Back at the home chain: pay out the native currency."""
        require(self.msg.sender == self.owner, "only the recipient redeems")
        require(self.chain_id == self.home_chain, "redeem only at home")
        require(self.minted == 0, "burn the pegged tokens first")
        amount = self.amount
        require(amount > 0, "nothing to redeem")
        self.amount = 0
        self.transfer(self.owner, amount)
        self.emit("Redeemed", amount=amount)
        return amount

    def move_to(self, target_chain: int) -> None:
        """Owner moves the escrow, but never with live pegged tokens."""
        super().move_to(target_chain)
        require(self.minted == 0, "burn the pegged tokens before moving")


@register_contract
class CurrencyRelay(Contract):
    """The factory contract ``c`` of Fig. 3 — one per source chain."""

    relays_created = Slot(int)

    @payable
    def create(self, target_chain: int, recipient: Address) -> Address:
        """Lock ``msg.value`` toward ``target_chain`` for ``recipient``;
        returns the escrow contract to prove and recreate there."""
        require(self.msg.value > 0, "attach the currency to relay")
        require(target_chain != self.chain_id, "target must be another chain")
        salt = self.relays_created
        self.relays_created = salt + 1
        escrow = self.create_escrow(recipient, target_chain, salt)
        self.emit(
            "RelayCreated",
            escrow=escrow.hex,
            amount=self.msg.value,
            target=target_chain,
        )
        return escrow

    def create_escrow(self, recipient: Address, target_chain: int, salt: int) -> Address:
        """Deploy the RelayedFunds escrow (CREATE2 by relay count)."""
        # The external `create` above shadows the base deploy helper, so
        # reach it explicitly.
        return Contract.create(
            self, RelayedFunds, recipient, target_chain, salt=salt, value=self.msg.value
        )
