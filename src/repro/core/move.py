"""Move1 / Move2 — Algorithm 1 of the paper.

``apply_move1`` (executed at the source chain ``B_i``):

1. run the contract's custom ``moveTo(target)`` guard (Listing 1) —
   a revert here refuses the move;
2. assign ``L_c := B_j`` (the effect of the new ``OP_MOVE`` opcode),
   blocking all further mutation at ``B_i``;
3. bump the contract's **move nonce** so the locked state — which the
   Move2 proof will carry — is distinguishable from every earlier
   residency (replay guard, Fig. 2).

``apply_move2`` (executed at the target chain ``B_j``):

1. abort unless the proven ``L_c`` equals ``B_j`` (line 5);
2. ``VS(B_i, m)`` via the node's light client: the root must belong to
   a sufficiently confirmed source header (line 7);
3. ``VP(V ↦ m)``: the proof bundle must reconstruct ``m`` (line 9);
4. abort stale bundles: an existing local record with
   ``move_nonce >= bundle.move_nonce`` means this state was already
   recreated here (or superseded) — the replay attack of Fig. 2;
5. recreate the storage via SSTORE (paying gas per slot) and the code
   (paying CREATE + code deposit on Ethereum-flavoured chains when the
   code is not already on-chain);
6. run the custom ``moveFinish()`` hook (line 13).

Any client may submit Move2 — the protocol needs no 2PC, and a client
crash between the two transactions leaves a move any third party can
complete (Section III-B).
"""

from __future__ import annotations

from typing import Optional

from repro.chain.lightclient import LightClient
from repro.chain.params import ChainParams
from repro.core.proofs import ContractStateProof
from repro.core.registry import ChainRegistry
from repro.crypto.hashing import keccak
from repro.crypto.keys import Address
from repro.errors import CodeNotFound, MoveError, ProofError, ReplayError, UnknownRootError
from repro.runtime.context import Msg, TxContext
from repro.runtime.registry import lookup_code
from repro.runtime.runtime import Runtime
from repro.telemetry.tracer import current_span


def apply_move1(
    ctx: TxContext,
    runtime: Runtime,
    contract: Address,
    target_chain: int,
    sender: Address,
) -> None:
    """Execute Move1 at the source chain (Algorithm 1, lines 1–3)."""
    state = runtime.state
    record = state.contract(contract)
    if record is None:
        raise MoveError(f"no contract at {contract}")
    if record.location != state.chain_id:
        raise MoveError(
            f"contract {contract} is not active here (L_c = {record.location})"
        )
    if target_chain == state.chain_id:
        raise MoveError("target blockchain is the current one")

    # Custom guard first (line 2): the developer's moveTo may revert.
    try:
        cls = lookup_code(record.code_hash)
    except CodeNotFound:
        # Raw bytecode contracts have no Python-level hook: they move
        # themselves by executing OP_MOVE inside a regular call, so a
        # Move1 transaction against them is meaningless.
        raise MoveError(
            "bytecode contracts move via their own OP_MOVE, not Move1"
        ) from None
    instance = cls(ctx, contract)
    ctx.push_msg(Msg(sender=sender, value=0))
    try:
        instance.move_to(target_chain)
    finally:
        ctx.pop_msg()

    # OP_MOVE (line 3): L_c <- B_j, plus the move-nonce bump that makes
    # this locked snapshot unique among the contract's residencies.
    ctx.charge(ctx.meter.schedule.move_op)
    state.set_location(contract, target_chain, height=ctx.env.height)
    state.bump_move_nonce(contract)
    current_span().event("move1.locked", target_chain=target_chain)


def validate_move2(
    state,
    bundle: ContractStateProof,
    light_client: LightClient,
    source_params: ChainParams,
) -> None:
    """All Move2 abort conditions (Algorithm 1, lines 5–10 + replay).

    Raises a specific :class:`~repro.errors.MoveError` subclass per
    failure; returns silently when the bundle is acceptable.
    """
    if bundle.location != state.chain_id:
        raise MoveError(
            f"contract is being moved to chain {bundle.location}, not here "
            f"({state.chain_id})"
        )
    if bundle.source_chain == state.chain_id:
        raise MoveError("source and target chains are the same")
    root = bundle.account_proof.computed_root()
    if not light_client.valid_state_root(bundle.source_chain, bundle.proof_height, root):
        raise UnknownRootError(
            f"state root at source height {bundle.proof_height} is unknown "
            "or not yet p-confirmed (VS failed)"
        )
    current_span().event(
        "move2.vs_ok", source_chain=bundle.source_chain, height=bundle.proof_height
    )
    if not bundle.verify_against_root(root, source_params.tree_factory):
        raise ProofError("proof bundle fails verification (VP failed)")
    current_span().event("move2.vp_ok", proof_bytes=bundle.size_bytes())
    existing = state.contract(bundle.contract)
    if existing is not None and existing.move_nonce >= bundle.move_nonce:
        raise ReplayError(
            f"stale move: local move nonce {existing.move_nonce} >= "
            f"proven {bundle.move_nonce} (replay prevented)"
        )
    current_span().event("move2.nonce_ok", move_nonce=bundle.move_nonce)


def apply_move2(
    ctx: TxContext,
    runtime: Runtime,
    bundle: ContractStateProof,
    light_client: LightClient,
    registry: ChainRegistry,
    sender: Address,
) -> None:
    """Execute Move2 at the target chain (Algorithm 1, lines 4–13)."""
    state = runtime.state
    source_params = registry.params_for(bundle.source_chain)

    # Verifying the Merkle proof costs gas proportional to its size.
    ctx.charge(ctx.meter.schedule.proof_verification(bundle.size_bytes()))
    validate_move2(state, bundle, light_client, source_params)

    code_hash = keccak(bundle.code)
    existing = state.contract(bundle.contract)
    if existing is None:
        # Recreating the contract pays CREATE, and — on chains that
        # charge it — the per-byte code deposit (Fig. 9's hatched bars:
        # "every recreated contract pays a constant gas based on the
        # size of the moved code").
        ctx.charge(ctx.meter.schedule.create, "create")
        if not (ctx.meter.schedule.code_deposit_dedup and state.has_code(code_hash)):
            ctx.charge(ctx.meter.schedule.code_deposit(len(bundle.code)), "create")
        record = state.create_contract(
            bundle.contract,
            code_hash,
            bundle.code,
            location=state.chain_id,
            move_nonce=bundle.move_nonce,
            balance=bundle.balance,
        )
    else:
        # The contract lived here before: refresh the stale record (the
        # bulk load below replaces its storage wholesale).
        state.set_location(bundle.contract, state.chain_id)
        delta = bundle.move_nonce - existing.move_nonce
        for _ in range(delta):
            state.bump_move_nonce(bundle.contract)
        balance_diff = bundle.balance - existing.balance
        if balance_diff > 0:
            state.add_balance(bundle.contract, balance_diff)
        elif balance_diff < 0:
            state.sub_balance(bundle.contract, -balance_diff)
        record = existing

    # Line 12: SSTORE every proven slot, at full storage-write cost.
    # The slots are bulk-loaded in one journaled pass so the target's
    # live storage trie is built canonically once, not per write.
    schedule = ctx.meter.schedule
    for _ in bundle.storage:
        ctx.charge(schedule.sstore_set)
    state.load_storage(bundle.contract, bundle.storage)
    current_span().event("move2.storage_replayed", slots=len(bundle.storage))

    # Line 13: the developer's moveFinish hook.  Raw bytecode contracts
    # have no Python hook — their post-move logic, if any, runs inside
    # their own code on the next call.
    try:
        cls = lookup_code(record.code_hash)
    except CodeNotFound:
        return
    instance = cls(ctx, bundle.contract)
    ctx.push_msg(Msg(sender=sender, value=0))
    try:
        instance.move_finish()
    finally:
        ctx.pop_msg()
    current_span().event("move2.move_finish")
