"""Atomic cross-chain swaps on top of the Move primitive (§IX).

The paper notes that "our protocol could be used to implement atomic
swaps in a similar way as shown in III-F" (the currency relay).  This
module is that construction: a maker on chain ``A`` swaps ``e1`` of
A-native currency against ``e2`` of B-native currency from a taker on
chain ``B``, with no trusted third party and no way for either side to
end up with both amounts.

Choreography::

    maker @A: SwapFactory.open(target=B, taker, ask=e2) + e1 attached
              -> escrow born holding e1, OP_MOVEd toward B on creation
    anyone:   Move2(escrow proof) @B
    taker @B: escrow.fill() + e2 attached
              -> e2 paid to the maker immediately (same address on all
                 chains, Section III-G); state = FILLED
    taker:    Move1(escrow -> A)  (only the taker may move it now)
    anyone:   Move2 @A
    taker @A: escrow.claim() -> receives the e1 held by the escrow

If the taker never fills, the maker waits out the deadline, moves the
escrow home and calls ``refund()``.  Safety comes from the state
machine + the Move lock: while OFFERED and before the deadline only the
taker benefits from moving it (and gains nothing); after FILLED only
the taker may move; the escrowed ``e1`` can leave the contract solely
through ``claim`` (taker, after paying) or ``refund`` (maker, after an
unfilled deadline).
"""

from __future__ import annotations

from repro.crypto.keys import Address
from repro.lang.movable import MovableContract
from repro.runtime.contract import Contract, Slot, external, payable, require, view
from repro.runtime.registry import register_contract

# escrow states
OFFERED = 0
FILLED = 1
CLOSED = 2


@register_contract
class SwapEscrow(MovableContract):
    """The movable swap escrow."""

    maker = Slot(Address)
    taker = Slot(Address)
    home_chain = Slot(int)
    offered_amount = Slot(int)
    ask_amount = Slot(int)
    deadline = Slot(int)
    state = Slot(int)

    def init(self, maker: Address, taker: Address, ask: int, deadline: int,
             target_chain: int) -> None:
        """Escrow ``msg.value`` against ``ask`` on the target chain."""
        require(self.msg.value > 0, "attach the offered currency")
        require(ask > 0, "ask must be positive")
        self.maker = maker
        self.taker = taker
        self.owner = maker
        self.home_chain = self.chain_id
        self.offered_amount = self.msg.value
        self.ask_amount = ask
        self.deadline = deadline
        self.state = OFFERED
        # Born locked toward the taker's chain, like the Fig. 3 relay.
        self.op_move(target_chain)

    # -- views -----------------------------------------------------------

    @view
    def status(self) -> tuple:
        """(state, offered, ask, deadline) for clients."""
        return (self.state, self.offered_amount, self.ask_amount, self.deadline)

    # -- the swap ---------------------------------------------------------

    @payable
    def fill(self) -> None:
        """Taker pays the ask on the away chain; maker is paid at once."""
        require(self.state == OFFERED, "not open")
        require(self.chain_id != self.home_chain, "fill on the away chain")
        require(self.msg.sender == self.taker, "only the designated taker")
        require(self.msg.value >= self.ask_amount, "ask not met")
        require(int(self.now) <= self.deadline, "offer expired")
        self.state = FILLED
        self.transfer(self.maker, self.ask_amount)
        overpay = self.msg.value - self.ask_amount
        if overpay:
            self.transfer(self.taker, overpay)
        self.emit("Filled", taker=self.taker.hex, paid=self.ask_amount)

    @external
    def claim(self) -> int:
        """Taker collects the escrowed amount back on the home chain."""
        require(self.state == FILLED, "not filled")
        require(self.chain_id == self.home_chain, "claim at the home chain")
        require(self.msg.sender == self.taker, "only the taker claims")
        amount = self.offered_amount
        self.state = CLOSED
        self.offered_amount = 0
        self.transfer(self.taker, amount)
        self.emit("Claimed", amount=amount)
        return amount

    @external
    def refund(self) -> int:
        """Maker reclaims an unfilled offer after the deadline."""
        require(self.state == OFFERED, "not refundable")
        require(self.chain_id == self.home_chain, "refund at the home chain")
        require(self.msg.sender == self.maker, "only the maker refunds")
        require(int(self.now) > self.deadline, "deadline not passed")
        amount = self.offered_amount
        self.state = CLOSED
        self.offered_amount = 0
        self.transfer(self.maker, amount)
        self.emit("Refunded", amount=amount)
        return amount

    # -- move policy --------------------------------------------------------

    def move_to(self, target_chain: int) -> None:
        """Who may move the escrow depends on the swap state.

        * FILLED  — only the taker, and only toward the home chain
          (to claim);
        * OFFERED — the taker any time (hurts nobody: the offer can
          only be filled on the away chain, and moving forfeits their
          chance), or the maker toward home *after* the deadline
          (refund path);
        * CLOSED  — only the maker (it is an empty shell).
        """
        if self.state == FILLED:
            require(self.msg.sender == self.taker, "only the taker moves a filled swap")
            require(target_chain == self.home_chain, "filled swaps go home")
            return
        if self.state == OFFERED:
            if self.msg.sender == self.taker:
                return
            require(self.msg.sender == self.maker, "not a swap party")
            require(int(self.now) > self.deadline, "maker must wait out the deadline")
            require(target_chain == self.home_chain, "refunds go home")
            return
        require(self.msg.sender == self.maker, "only the maker moves a closed swap")


@register_contract
class SwapFactory(Contract):
    """Opens swap escrows (one per swap) on the maker's chain."""

    swaps_opened = Slot(int)

    @payable
    def open(self, target_chain: int, taker: Address, ask: int, deadline: int) -> Address:
        """Escrow ``msg.value`` against ``ask`` units on ``target_chain``."""
        require(target_chain != self.chain_id, "target must be another chain")
        salt = self.swaps_opened
        self.swaps_opened = salt + 1
        escrow = Contract.create(
            self,
            SwapEscrow,
            self.msg.sender,
            taker,
            ask,
            deadline,
            target_chain,
            salt=salt,
            value=self.msg.value,
        )
        self.emit("SwapOpened", escrow=escrow.hex, ask=ask, target=target_chain)
        return escrow
