"""Registry of interoperating chains and their agreed parameters.

Section IV-A: chains willing to support the Move protocol must agree on
configured parameters — most importantly each chain's confirmation
depth ``p`` and (for proof verification) its commitment-tree flavour.
Every node holds the same registry, the analogue of the protocol's
shared configuration.
"""

from __future__ import annotations

from typing import Dict, Iterator

from repro.chain.params import ChainParams
from repro.errors import StateError


class ChainRegistry:
    """Immutable-ish map from chain id to agreed parameters."""

    def __init__(self) -> None:
        self._params: Dict[int, ChainParams] = {}

    def register(self, params: ChainParams) -> None:
        """Add a chain's agreed parameters (idempotent per instance)."""
        existing = self._params.get(params.chain_id)
        if existing is not None and existing is not params:
            raise StateError(f"chain id {params.chain_id} already registered")
        self._params[params.chain_id] = params

    def params_for(self, chain_id: int) -> ChainParams:
        """Parameters of a registered chain (StateError if unknown)."""
        params = self._params.get(chain_id)
        if params is None:
            raise StateError(f"unknown chain id {chain_id}")
        return params

    def __contains__(self, chain_id: int) -> bool:
        return chain_id in self._params

    def __iter__(self) -> Iterator[ChainParams]:
        return iter(self._params.values())

    def __len__(self) -> int:
        return len(self._params)
