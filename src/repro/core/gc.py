"""Garbage collection of stale moved-away state (paper §III-G c).

"Every time a contract is moved it leaves behind stale state on the
original blockchain, which could be garbage collected, paying attention
to guard against the attack previously described.  Designing fee
incentives to clean the state is left as future work."

This module implements the collection itself, with the safety property
the paper demands: the **tombstone keeps the contract's move nonce and
location**, so the replay attack of Fig. 2 stays impossible after the
storage is reclaimed — a stale Move2 still compares against the
tombstone's nonce and aborts.  What is lost is only read availability
of the stale copy (reads of a collected contract see empty storage),
which is the documented trade-off.

Collection runs at block boundaries through :meth:`Chain.gc_stale` (see
:mod:`repro.chain.chain`), optionally only for contracts that moved
away at least ``min_age_blocks`` ago so pending Move2 proofs elsewhere
are never raced.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.crypto.keys import Address
from repro.statedb.state import WorldState


@dataclass
class GCReport:
    """What one collection pass reclaimed."""

    collected: List[Address] = field(default_factory=list)
    slots_freed: int = 0
    bytes_freed: int = 0
    code_blobs_freed: int = 0

    @property
    def contracts_collected(self) -> int:
        return len(self.collected)


def collect_stale_contracts(
    state: WorldState,
    current_height: Optional[int] = None,
    min_age_blocks: int = 0,
) -> GCReport:
    """Reclaim storage of contracts whose ``L_c`` points elsewhere.

    The contract *record* survives as a tombstone: balance stays locked
    (it moved with the contract via the proof), ``location`` keeps the
    forwarding pointer clients use to find the contract (§III-G b), and
    ``move_nonce`` keeps the replay guard alive.  Orphaned code blobs
    (no remaining contract references them) are dropped from the code
    store.
    """
    report = GCReport()
    for address, record in state.contracts.items():
        if record.location == state.chain_id:
            continue  # active here — never collect
        if state.is_mirror(address):
            continue  # live replicated state, not a stale relic
        if not record.storage:
            continue  # already collected (or stateless)
        if (
            min_age_blocks
            and current_height is not None
            and record.moved_at_height is not None
            and current_height - record.moved_at_height < min_age_blocks
        ):
            continue
        report.collected.append(address)
        report.slots_freed += len(record.storage)
        report.bytes_freed += sum(
            len(key) + len(value) for key, value in record.storage.items()
        )
        # Unjournaled wipe: GC runs between blocks, outside any
        # transaction, exactly like a state-pruning pass would.  The
        # state resets the contract's live storage trie alongside the
        # raw slots so the next commit recommits the empty root.
        state.wipe_storage(address)

    # Drop code blobs no live record references.
    referenced = {record.code_hash for record in state.contracts.values()}
    orphaned = [code_hash for code_hash in state.code_store if code_hash not in referenced]
    for code_hash in orphaned:
        del state.code_store[code_hash]
        report.code_blobs_freed += 1
    return report
