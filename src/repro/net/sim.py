"""Deterministic discrete-event simulator.

All experiments run against this loop: block intervals of 5 or 15
seconds cost no wall-clock time, and every run is reproducible from its
seed.  Events are ordered by ``(time, sequence_number)`` so same-time
events fire in scheduling order.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional

from repro.errors import SimulationError


@dataclass(order=True)
class _Event:
    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventHandle:
    """Handle returned by :meth:`Simulator.schedule`; allows cancellation."""

    def __init__(self, event: _Event):
        self._event = event

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if it already fired)."""
        self._event.cancelled = True

    @property
    def time(self) -> float:
        return self._event.time


class Simulator:
    """A single-threaded simulated clock and event queue.

    The random number generator is part of the simulator so that every
    stochastic choice in an experiment (latency jitter, PoW mining
    times, workload decisions) derives from one seed.
    """

    def __init__(self, seed: int = 0):
        self._now = 0.0
        self._seq = 0
        self._queue: List[_Event] = []
        self.rng = random.Random(seed)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def schedule(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        """Run ``callback`` ``delay`` simulated seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        self._seq += 1
        event = _Event(time=self._now + delay, seq=self._seq, callback=callback)
        heapq.heappush(self._queue, event)
        return EventHandle(event)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> EventHandle:
        """Run ``callback`` at an absolute simulated time."""
        return self.schedule(time - self._now, callback)

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Process events until the queue drains, ``until`` is reached,
        or ``max_events`` have fired.  Returns the number of events
        processed.

        When stopping at ``until``, the clock is advanced exactly to
        ``until`` (pending later events stay queued and can be resumed
        by a further ``run`` call).
        """
        processed = 0
        while self._queue:
            if max_events is not None and processed >= max_events:
                break
            event = self._queue[0]
            if until is not None and event.time > until:
                self._now = until
                return processed
            heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            event.callback()
            processed += 1
        if until is not None and self._now < until:
            self._now = until
        return processed

    def pending(self) -> int:
        """Number of queued (possibly cancelled) events."""
        return len(self._queue)
