"""Message transport between simulated processes.

A :class:`Network` binds a :class:`~repro.net.sim.Simulator` to a
:class:`~repro.net.latency.LatencyModel`.  Processes register an
:class:`Endpoint` (a name, a region and a message handler); sends are
delivered as scheduled events after the sampled one-way latency.

Delivery is reliable and FIFO-per-pair is *not* guaranteed (jitter can
reorder), matching a TCP-per-message/UDP-like abstraction that BFT
protocols must already tolerate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional

from repro.errors import SimulationError
from repro.net.latency import LatencyModel
from repro.net.sim import Simulator

MessageHandler = Callable[[str, Any], None]

#: Fault-injection hook: inspects an outbound message *after* partition
#: filtering and latency sampling, and returns the list of delivery
#: delays to use instead — ``[]`` drops the message, one entry delivers
#: it once (possibly delayed or hastened, which reorders it relative to
#: its peers), several entries duplicate it.  ``None`` leaves the
#: sampled latency untouched.  Installed by
#: :class:`~repro.faults.injector.FaultInjector`.
FaultHook = Callable[[str, str, Any, float], Optional[List[float]]]


@dataclass
class Endpoint:
    """A process attached to the network."""

    name: str
    region: str
    handler: MessageHandler


class Network:
    """Latency-faithful message passing over the simulator."""

    def __init__(self, sim: Simulator, latency: Optional[LatencyModel] = None):
        self.sim = sim
        self.latency = latency or LatencyModel()
        self._endpoints: Dict[str, Endpoint] = {}
        self.messages_sent = 0
        self.bytes_sent = 0
        self.messages_dropped = 0
        self.messages_duplicated = 0
        self._partition: Optional[Dict[str, int]] = None
        #: optional fault-injection hook (see :data:`FaultHook`)
        self.fault_hook: Optional[FaultHook] = None

    def attach(self, name: str, region: str, handler: MessageHandler) -> Endpoint:
        """Register a process; ``handler(sender_name, payload)`` receives."""
        if name in self._endpoints:
            raise SimulationError(f"endpoint {name!r} already attached")
        endpoint = Endpoint(name=name, region=region, handler=handler)
        self._endpoints[name] = endpoint
        return endpoint

    def detach(self, name: str) -> None:
        """Remove a process; in-flight messages to it are dropped."""
        self._endpoints.pop(name, None)

    def endpoints(self) -> Iterable[str]:
        """Names of currently attached processes."""
        return tuple(self._endpoints)

    def partition(self, *groups: Iterable[str]) -> None:
        """Split the network: messages between different groups drop.

        Endpoints not named in any group form an implicit extra group.
        Call :meth:`heal` to restore full connectivity.
        """
        mapping: Dict[str, int] = {}
        for index, group in enumerate(groups):
            for name in group:
                mapping[name] = index
        self._partition = mapping

    def heal(self) -> None:
        """End the partition; subsequent sends flow everywhere again."""
        self._partition = None

    def _partitioned(self, src: str, dst: str) -> bool:
        if self._partition is None:
            return False
        return self._partition.get(src, -1) != self._partition.get(dst, -1)

    def send(self, src: str, dst: str, payload: Any, size_bytes: int = 0) -> None:
        """Send ``payload`` from ``src`` to ``dst`` after sampled latency.

        Messages to endpoints that detach before delivery are silently
        dropped (the real network gives no better guarantee), as are
        messages crossing an active partition.
        """
        source = self._endpoints.get(src)
        if source is None:
            raise SimulationError(f"unknown sender {src!r}")
        destination = self._endpoints.get(dst)
        if destination is None:
            return
        if self._partitioned(src, dst):
            self.messages_dropped += 1
            return
        delay = self.latency.sample(source.region, destination.region, self.sim.rng)
        delays = [delay]
        if self.fault_hook is not None:
            hooked = self.fault_hook(src, dst, payload, delay)
            if hooked is not None:
                delays = [max(0.0, d) for d in hooked]
                if not delays:
                    self.messages_dropped += 1
                    return
                self.messages_duplicated += len(delays) - 1
        self.messages_sent += 1
        self.bytes_sent += size_bytes

        def deliver() -> None:
            target = self._endpoints.get(dst)
            if target is not None:
                target.handler(src, payload)

        for scheduled_delay in delays:
            self.sim.schedule(scheduled_delay, deliver)

    def broadcast(self, src: str, dsts: Iterable[str], payload: Any, size_bytes: int = 0) -> None:
        """Send the same payload to many destinations (independent latencies)."""
        for dst in dsts:
            if dst != src:
                self.send(src, dst, payload, size_bytes)
