"""Inter-region WAN latency model.

The paper emulates latencies among 14 AWS regions on four continents,
following the Red Belly blockchain evaluation [27], and assigns nodes to
regions at random.  We reproduce the methodology: the 14 regions below
are the classic AWS regions; pairwise one-way latency is derived from
great-circle distance at an effective signal speed plus a fixed routing
overhead, which lands within a few milliseconds of published
inter-region measurements (e.g. ~35 ms one-way Virginia↔Ireland,
~70 ms one-way Virginia↔Tokyo).

Each delivery samples small multiplicative jitter so message orderings
are not artificially synchronized.
"""

from __future__ import annotations

import math
import random
from typing import Dict, Sequence, Tuple

# (name, latitude, longitude) of the 14 AWS regions used by Red Belly.
REGIONS: Tuple[Tuple[str, float, float], ...] = (
    ("us-east-1", 38.9, -77.0),       # N. Virginia
    ("us-east-2", 40.0, -83.0),       # Ohio
    ("us-west-1", 37.4, -122.0),      # N. California
    ("us-west-2", 45.9, -119.2),      # Oregon
    ("ca-central-1", 45.5, -73.6),    # Montreal
    ("sa-east-1", -23.5, -46.6),      # São Paulo
    ("eu-west-1", 53.3, -6.3),        # Ireland
    ("eu-west-2", 51.5, -0.1),        # London
    ("eu-central-1", 50.1, 8.7),      # Frankfurt
    ("ap-south-1", 19.1, 72.9),       # Mumbai
    ("ap-southeast-1", 1.3, 103.8),   # Singapore
    ("ap-southeast-2", -33.9, 151.2), # Sydney
    ("ap-northeast-1", 35.7, 139.7),  # Tokyo
    ("ap-northeast-2", 37.6, 127.0),  # Seoul
)

_EARTH_RADIUS_KM = 6371.0
# Light in fiber is ~200,000 km/s; real routes are not great circles, so
# an effective 170,000 km/s with a 4 ms fixed overhead fits measurements.
_EFFECTIVE_KM_PER_S = 170_000.0
_FIXED_OVERHEAD_S = 0.004
_INTRA_REGION_S = 0.0006
_JITTER_SIGMA = 0.06


def _great_circle_km(a: Tuple[float, float], b: Tuple[float, float]) -> float:
    lat1, lon1 = math.radians(a[0]), math.radians(a[1])
    lat2, lon2 = math.radians(b[0]), math.radians(b[1])
    h = (
        math.sin((lat2 - lat1) / 2) ** 2
        + math.cos(lat1) * math.cos(lat2) * math.sin((lon2 - lon1) / 2) ** 2
    )
    return 2 * _EARTH_RADIUS_KM * math.asin(math.sqrt(h))


class LatencyModel:
    """One-way message latency between region-assigned nodes."""

    def __init__(self, regions: Sequence[Tuple[str, float, float]] = REGIONS):
        self._names = [name for name, _lat, _lon in regions]
        self._base: Dict[Tuple[str, str], float] = {}
        coords = {name: (lat, lon) for name, lat, lon in regions}
        for src in self._names:
            for dst in self._names:
                if src == dst:
                    self._base[(src, dst)] = _INTRA_REGION_S
                else:
                    distance = _great_circle_km(coords[src], coords[dst])
                    self._base[(src, dst)] = (
                        distance / _EFFECTIVE_KM_PER_S + _FIXED_OVERHEAD_S
                    )

    @property
    def region_names(self) -> Sequence[str]:
        return tuple(self._names)

    def base_latency(self, src_region: str, dst_region: str) -> float:
        """Deterministic one-way latency in seconds (no jitter)."""
        return self._base[(src_region, dst_region)]

    def sample(self, src_region: str, dst_region: str, rng: random.Random) -> float:
        """One-way latency with multiplicative log-normal jitter."""
        base = self._base[(src_region, dst_region)]
        return base * rng.lognormvariate(0.0, _JITTER_SIGMA)

    def assign_regions(self, count: int, rng: random.Random) -> Sequence[str]:
        """Randomly allocate ``count`` nodes to regions (paper Section VI)."""
        return tuple(rng.choice(self._names) for _ in range(count))
