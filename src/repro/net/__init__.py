"""Discrete-event network substrate.

The paper's evaluation ran on an 80-machine cluster with emulated WAN
latencies taken from the Red Belly evaluation's 14 AWS regions [27],
with nodes randomly assigned to regions.  This package reproduces that
methodology in simulated time: a deterministic event loop
(:mod:`repro.net.sim`), the inter-region latency matrix
(:mod:`repro.net.latency`) and message transport between simulated
processes (:mod:`repro.net.transport`).
"""

from repro.net.latency import REGIONS, LatencyModel
from repro.net.sim import Simulator
from repro.net.transport import Endpoint, Network

__all__ = ["Simulator", "LatencyModel", "REGIONS", "Network", "Endpoint"]
