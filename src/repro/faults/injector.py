"""Applies a :class:`~repro.faults.plan.FaultPlan` to a live deployment.

The injector is the single place that knows how to turn an abstract
fault event into concrete adversity against the simulation's seams:

* **transport** — it installs itself as the
  :class:`~repro.net.transport.Network` fault hook and keeps a set of
  active windows that drop, duplicate, delay (and thereby reorder)
  messages; partitions isolate endpoints via the network's own
  partition mechanism (refcounted, so overlapping windows compose);
* **consensus** — validators crash, recover and stall through the
  engines' fail-stop API;
* **light clients** — header relays are withheld and released, their
  delivery made stale, and observers are fed equivocating headers and
  competing (reorg) branches built against the source chain's real
  canonical history.

All stochastic choices draw from the injector's *own* ``random.Random``
seeded from the plan, so fault behaviour is reproducible independently
of how the workload consumes the simulator's RNG.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional

from repro.chain.block import BlockHeader
from repro.chain.chain import Chain
from repro.errors import FaultPlanError, StateError
from repro.faults.plan import MESSAGE_KINDS, FaultEvent, FaultPlan
from repro.ibc.headers import HeaderRelay
from repro.net.sim import Simulator
from repro.net.transport import Network
from repro.telemetry import Telemetry


@dataclass
class _MessageWindow:
    end: float
    kind: str  # "drop" | "duplicate" | "delay"
    magnitude: float


class FaultInjector:
    """Schedules and executes the faults of a plan over one simulator."""

    def __init__(
        self,
        sim: Simulator,
        network: Optional[Network] = None,
        chains: Mapping[int, Chain] = None,
        engines: Mapping[int, Any] = None,
        relays: Mapping[int, HeaderRelay] = None,
        seed: int = 0,
        telemetry: Optional[Telemetry] = None,
    ):
        self.sim = sim
        self.network = network
        self.chains: Dict[int, Chain] = dict(chains or {})
        self.engines: Dict[int, Any] = dict(engines or {})
        self.relays: Dict[int, HeaderRelay] = dict(relays or {})
        if telemetry is None:
            first = next(iter(self.chains.values()), None)
            telemetry = first.telemetry if first is not None else Telemetry.disabled()
        self.telemetry = telemetry
        self.rng = random.Random(seed ^ 0x5FA17)
        self.injected: Dict[str, int] = {}
        #: callbacks invoked with each plan-level FaultEvent as it
        #: fires (per-message drops/delays are not reported here) —
        #: the health plane's flight recorder hooks in through this
        self.observers: List[Any] = []
        self._windows: List[_MessageWindow] = []
        self._isolated: Dict[str, int] = {}  # endpoint -> active windows
        if network is not None:
            network.fault_hook = self._hook

    # ------------------------------------------------------------------
    # Plan application
    # ------------------------------------------------------------------

    def apply(self, plan: FaultPlan) -> None:
        """Schedule every event of the plan relative to *now*."""
        for event in plan.events:
            self.sim.schedule(event.time, lambda e=event: self._fire(e))

    def _count(self, kind: str) -> None:
        self.injected[kind] = self.injected.get(kind, 0) + 1
        self.telemetry.metrics.counter("faults_injected_total", kind=kind).inc()

    def _fire(self, event: FaultEvent) -> None:
        self._count(event.kind)
        # Plan-level faults become tagged events on every active trace
        # they can affect (per-message drops/delays only count — they
        # would drown traces in events).
        self.telemetry.tracer.fault_event(
            event.kind,
            chain=event.chain,
            duration=event.duration,
            magnitude=event.magnitude,
        )
        for observer in list(self.observers):
            observer(event)
        if event.kind in MESSAGE_KINDS:
            self._windows.append(
                _MessageWindow(
                    end=self.sim.now + event.duration,
                    kind=event.kind,
                    magnitude=event.magnitude,
                )
            )
            return
        if event.kind == "partition":
            self.isolate(event.target, event.duration)
            return
        if event.kind in ("crash", "stall_proposer"):
            engine = self._engine(event.chain)
            engine.crash(event.target)
            self.sim.schedule(event.duration, lambda: engine.recover(event.target))
            return
        if event.kind == "withhold_headers":
            relay = self._relay(event.chain)
            relay.withhold()
            self.sim.schedule(event.duration, relay.release)
            return
        if event.kind == "stale_headers":
            relay = self._relay(event.chain)
            relay.extra_delay += event.magnitude
            self.sim.schedule(
                event.duration,
                lambda: setattr(
                    relay, "extra_delay", max(0.0, relay.extra_delay - event.magnitude)
                ),
            )
            return
        if event.kind == "equivocate":
            self.equivocate(event.chain)
            return
        if event.kind == "reorg":
            depth = int(event.magnitude)
            if depth < 1 or depth + 1 > self._chain(event.chain).height:
                self._count("reorg_skipped")  # chain too short yet
                return
            self.reorg(event.chain, depth)
            return
        raise FaultPlanError(f"injector cannot handle {event.kind!r}")

    # ------------------------------------------------------------------
    # Transport faults
    # ------------------------------------------------------------------

    def _hook(
        self, src: str, dst: str, payload: Any, delay: float
    ) -> Optional[List[float]]:
        now = self.sim.now
        if self._windows and self._windows[0].end <= now:
            self._windows = [w for w in self._windows if w.end > now]
        delays: Optional[List[float]] = None
        for window in self._windows:
            if window.kind == "drop" and self.rng.random() < window.magnitude:
                self._count("msg_dropped")
                return []
            if window.kind == "duplicate" and self.rng.random() < window.magnitude:
                self._count("msg_duplicated")
                base = delays[0] if delays else delay
                delays = [base, base + self.rng.uniform(0.01, 1.0)]
            if window.kind == "delay":
                extra = self.rng.uniform(0.0, window.magnitude)
                self._count("msg_delayed")
                delays = [d + extra for d in (delays or [delay])]
        return delays

    def isolate(self, endpoint: str, duration: float) -> None:
        """Cut ``endpoint`` off from everyone for ``duration`` seconds.

        Overlapping isolations compose: the partition is rebuilt from
        the full set of currently isolated endpoints on every change.
        """
        if self.network is None:
            raise FaultPlanError("no network attached to the injector")
        self._isolated[endpoint] = self._isolated.get(endpoint, 0) + 1
        self._apply_isolation()

        def end() -> None:
            self._isolated[endpoint] -= 1
            if self._isolated[endpoint] <= 0:
                del self._isolated[endpoint]
            self._apply_isolation()

        self.sim.schedule(duration, end)

    def _apply_isolation(self) -> None:
        if not self._isolated:
            self.network.heal()
            return
        # Each isolated endpoint is its own group; every endpoint not
        # named falls into the implicit connected majority.
        self.network.partition(*[[name] for name in sorted(self._isolated)])

    # ------------------------------------------------------------------
    # Header-stream faults
    # ------------------------------------------------------------------

    def equivocate(self, chain_id: int) -> None:
        """Feed observers a conflicting header at the source's head.

        Non-forking (BFT) observers must reject it and bump their
        ``equivocations`` counter; fork-aware observers track it as a
        dead-end branch that never becomes canonical.
        """
        source = self._chain(chain_id)
        head = source.head.header
        fake = BlockHeader(
            chain_id=head.chain_id,
            height=head.height,
            parent_hash=head.parent_hash,
            state_root=self._random_root(),
            txs_root=head.txs_root,
            timestamp=head.timestamp,
            proposer="equivocator",
        )
        for observer in self._observers(chain_id):
            observer.ingest_header(fake)

    def reorg(self, chain_id: int, depth: int) -> int:
        """Show observers a competing branch of the source chain.

        ``depth`` is the confirmation count of the deepest block the
        branch orphans: the fork point sits ``depth + 1`` below the
        head, and the branch is one block longer than the honest chain,
        so fork-aware observers adopt it as canonical — exactly what a
        late-arriving heavier PoW branch does.  Roots in the replaced
        suffix become untrusted, so proofs against them stop validating
        (``VS`` fails) until the honest branch outgrows the attacker's
        again.  At ``depth < p`` every orphaned block was still
        unconfirmed and the reorg is silently absorbed; at
        ``depth >= p`` the branch replaces a header peers were entitled
        to trust — the store *detects* this (``deep_reorgs``), never
        absorbs it.  Returns the fork height.
        """
        source = self._chain(chain_id)
        if depth < 1 or depth + 1 > source.height:
            raise FaultPlanError(
                f"reorg depth {depth} out of range for height {source.height}"
            )
        fork_height = source.height - depth - 1
        parent = source.blocks[fork_height].header
        branch: List[BlockHeader] = []
        previous_hash = parent.hash()
        for height in range(fork_height + 1, source.height + 2):
            header = BlockHeader(
                chain_id=chain_id,
                height=height,
                parent_hash=previous_hash,
                state_root=self._random_root(),
                txs_root=self._random_root(),
                timestamp=parent.timestamp + (height - fork_height),
                proposer="attacker",
            )
            branch.append(header)
            previous_hash = header.hash()
        for observer in self._observers(chain_id):
            try:
                for header in branch:
                    observer.ingest_header(header)
            except StateError:
                # The observer has not seen the fork point yet (its
                # relay is withheld or lagging): a detached branch is
                # unadoptable, exactly as for a syncing real node.
                self._count("reorg_undeliverable")
        return fork_height

    # ------------------------------------------------------------------

    def _engine(self, chain_id: int):
        engine = self.engines.get(chain_id)
        if engine is None:
            raise FaultPlanError(f"no consensus engine for chain {chain_id}")
        return engine

    def _relay(self, chain_id: int) -> HeaderRelay:
        relay = self.relays.get(chain_id)
        if relay is None:
            raise FaultPlanError(f"no header relay for chain {chain_id}")
        return relay

    def _chain(self, chain_id: int) -> Chain:
        chain = self.chains.get(chain_id)
        if chain is None:
            raise FaultPlanError(f"unknown chain {chain_id}")
        return chain

    def _observers(self, chain_id: int) -> List[Chain]:
        return [c for cid, c in sorted(self.chains.items()) if cid != chain_id]

    def _random_root(self) -> bytes:
        return self.rng.getrandbits(256).to_bytes(32, "big")
