"""Seeded chaos runs: random faults over real Move workloads.

``run_chaos(seed)`` builds a small two-chain deployment (plus an
optional PoW bystander whose headers reorg), runs the SCoin or
ScalableKitties workload over it while a :class:`FaultInjector` executes
``FaultPlan.from_seed(seed)``, and keeps an
:class:`~repro.faults.invariants.InvariantChecker` attached so every
block of every chain re-proves the paper's safety properties.

The design target is FoundationDB-style *deterministic* simulation
testing: everything stochastic — consensus timing, network latency,
fault timing, fault dice, workload choices — derives from ``seed``, so
a violation report is fully reproduced by re-running the same call.
Liveness is intentionally not asserted here (a partition or withheld
relay may stall moves for its whole window); what chaos runs establish
is that no fault schedule the plan generator emits can make the system
*unsafe*.

The world:

* chains 1 and 2: Burrow/Tendermint, four validators each (quorum 3,
  so every single-validator fault is survivable), 5 s blocks;
* optional chain 3 (``pow_peer=True``): Ethereum-flavoured PoW
  bystander observed fork-aware by the others — the target of ``reorg``
  and the reason their light clients must track branches;
* header relays with a small simulated delay, one per source chain, so
  withhold/stale faults have a real seam to grab;
* a handful of closed-loop actors moving their contracts back and
  forth between chains 1 and 2, transferring tokens (SCoin) or breeding
  cats (ScalableKitties) whenever co-located, with Move2 retried on
  stale-view failures exactly like a real relayer client would.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.chain.chain import Chain
from repro.chain.params import burrow_params, ethereum_params
from repro.chain.tx import CallPayload, DeployPayload, Move1Payload, Move2Payload, sign_transaction
from repro.consensus.pow import PowEngine
from repro.consensus.tendermint import TendermintEngine
from repro.core.registry import ChainRegistry
from repro.crypto.keys import Address, KeyPair
from repro.faults.injector import FaultInjector
from repro.faults.invariants import InvariantChecker
from repro.faults.plan import FaultPlan
from repro.net.sim import Simulator
from repro.net.transport import Network
from repro.ibc.headers import HeaderRelay
from repro.telemetry import Telemetry

#: chains the workload actually moves contracts between
WORKLOAD_CHAINS = (1, 2)
#: id of the optional PoW bystander
POW_CHAIN = 3
#: one-way client-to-chain submission latency
SUBMIT_LATENCY = 0.1
#: simulated header-relay delay (gives withhold/stale faults a seam)
RELAY_DELAY = 0.2
#: Move2 retry backoff and cap: a stale target view (withheld or lagging
#: relay) clears once headers flow again; a permanently replaced root
#: (deep reorg) never does, so the client eventually gives up with the
#: contract parked in its locked source copy — safe, just not moved.
MOVE2_RETRY_DELAY = 10.0
MOVE2_MAX_RETRIES = 12


@dataclass
class ChaosReport:
    """Everything a chaos run observed — safety counters included."""

    seed: int
    duration: float
    workload: str
    plan_counts: Dict[str, int] = field(default_factory=dict)
    injected: Dict[str, int] = field(default_factory=dict)
    blocks: Dict[int, int] = field(default_factory=dict)
    moves_started: int = 0
    moves_completed: int = 0
    moves_abandoned: int = 0
    move2_retries: int = 0
    actions_completed: int = 0  # transfers (SCoin) / births (kitties)
    actions_failed: int = 0
    invariant_checks: int = 0
    #: final committed state root per chain (hex) — lets determinism
    #: harnesses compare whole runs without holding the worlds alive
    final_roots: Dict[int, str] = field(default_factory=dict)
    equivocations_rejected: int = 0
    deep_reorgs_detected: int = 0
    messages_dropped: int = 0
    messages_duplicated: int = 0
    # replication (``replicate=True`` runs only)
    replica_updates: int = 0
    replica_halts: int = 0
    replica_tombstones: int = 0
    replica_rehomes: int = 0
    replica_checks: int = 0
    # health plane (``health=True`` runs only) — the log and bundle are
    # canonical JSON strings so determinism harnesses can compare runs
    # byte-for-byte across executor worker counts
    alerts_fired: int = 0
    health_transitions: int = 0
    health_postmortems: int = 0
    health_states: Dict[str, str] = field(default_factory=dict)
    alert_log: str = ""
    postmortem_bundle: str = ""


@dataclass
class _Actor:
    keypair: KeyPair
    contract: Optional[Address] = None
    location: int = 1
    busy: bool = False
    # kitties: the actor's second (stationary) cat on chain 1
    partner: Optional[Address] = None


class ChaosWorld:
    """The deployment + workload harness a chaos run executes in."""

    def __init__(
        self,
        seed: int,
        pow_peer: bool = False,
        actors: int = 3,
        telemetry: Optional[Telemetry] = None,
        executor_workers: int = 0,
        executor_backend: str = "thread",
    ):
        self.seed = seed
        self.telemetry = telemetry if telemetry is not None else Telemetry.disabled()
        self.sim = Simulator(seed=seed)
        self.telemetry.bind_clock(lambda: self.sim.now)
        self.network = Network(self.sim)
        self.registry = ChainRegistry()
        self.rng = random.Random(seed ^ 0xC4A05)
        self.chains: Dict[int, Chain] = {}
        self.engines: Dict[int, object] = {}
        self.relays: Dict[int, HeaderRelay] = {}
        for chain_id in WORKLOAD_CHAINS:
            chain = Chain(
                burrow_params(
                    chain_id,
                    validator_count=4,
                    executor_workers=executor_workers,
                    executor_backend=executor_backend,
                ),
                self.registry,
                verify_signatures=False,
                telemetry=self.telemetry,
            )
            regions = self.network.latency.assign_regions(4, self.sim.rng)
            self.chains[chain_id] = chain
            self.engines[chain_id] = TendermintEngine(
                self.sim, self.network, chain, regions
            )
        if pow_peer:
            chain = Chain(
                ethereum_params(
                    POW_CHAIN,
                    executor_workers=executor_workers,
                    executor_backend=executor_backend,
                ),
                self.registry,
                verify_signatures=False,
                telemetry=self.telemetry,
            )
            regions = self.network.latency.assign_regions(4, self.sim.rng)
            self.chains[POW_CHAIN] = chain
            self.engines[POW_CHAIN] = PowEngine(self.sim, self.network, chain, regions)
        all_chains = list(self.chains.values())
        for chain_id, chain in self.chains.items():
            targets = [c for c in all_chains if c is not chain]
            self.relays[chain_id] = HeaderRelay(
                chain,
                targets,
                sim=self.sim,
                delay=RELAY_DELAY,
                fork_aware=(chain_id == POW_CHAIN),
            )
        self.actors = [
            _Actor(keypair=KeyPair.from_name(f"chaos-{seed}-actor-{i}"))
            for i in range(actors)
        ]
        #: contracts the workload deploys but never moves (token,
        #: registry, partner cats) — replication targets under chaos
        self.stationary: List[Address] = []
        self.owner = KeyPair.from_name(f"chaos-{seed}-owner")
        funds = {kp.address: 10**12 for kp in [self.owner] + [a.keypair for a in self.actors]}
        for chain in all_chains:
            chain.fund(funds)
        self.report: Optional[ChaosReport] = None
        self.deadline = 0.0

    # ------------------------------------------------------------------
    # Generic plumbing
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Start every chain's consensus engine."""
        for engine in self.engines.values():
            engine.start()

    def submit(self, chain_id: int, tx) -> None:
        """Hand ``tx`` to a chain's mempool after client-side latency."""
        chain = self.chains[chain_id]
        self.sim.schedule(SUBMIT_LATENCY, lambda: chain.submit(tx))

    def run_tx(self, chain_id: int, keypair: KeyPair, payload, callback) -> None:
        """Sign, submit and invoke ``callback(receipt)`` on inclusion."""
        tx = sign_transaction(keypair, payload)
        self.chains[chain_id].wait_for(tx.tx_id, callback)
        self.submit(chain_id, tx)

    # ------------------------------------------------------------------
    # The Move loop (with the Move2 retry a real relayer client has)
    # ------------------------------------------------------------------

    def move(
        self,
        actor: _Actor,
        target_id: int,
        on_done: Callable[[bool], None],
    ) -> None:
        """Move the actor's contract to ``target_id``; ``on_done(ok)``."""
        source_id = actor.location
        source = self.chains[source_id]
        target = self.chains[target_id]
        self.report.moves_started += 1
        actor.busy = True
        tracer = self.telemetry.tracer
        root = tracer.start_trace(
            "move", source_chain=source_id, target_chain=target_id
        )
        live = {"span": tracer.start_span("move1", root, chain=source_id)}

        def finish(ok: bool) -> None:
            actor.busy = False
            if ok:
                actor.location = target_id
                self.report.moves_completed += 1
                root.end(success=True)
            else:
                self.report.moves_abandoned += 1
                root.end(success=False)
            on_done(ok)

        def after_move1(receipt) -> None:
            if not receipt.success:
                live["span"].end(success=False)
                finish(False)
                return
            inclusion = receipt.block_height
            ready = source.proof_ready_height(inclusion)
            live["span"].end(success=True)
            live["span"] = tracer.start_span(
                "confirm.wait", root, chain=source_id, ready_height=ready
            )
            tracer.watch_header(root, source_id, ready, observer=target_id)

            def when_ready(block, _receipts) -> None:
                if block.height >= ready:
                    source.unsubscribe(when_ready)
                    try_move2(inclusion, 0)

            if source.height >= ready:
                try_move2(inclusion, 0)
            else:
                source.subscribe(when_ready)

        def try_move2(inclusion: int, attempt: int) -> None:
            if attempt == 0:
                live["span"].end(success=True)
            live["span"] = tracer.start_span("proof.build", root, chain=source_id)
            bundle = source.prove_contract_at(actor.contract, inclusion)
            live["span"].end(success=True, proof_bytes=bundle.size_bytes())
            live["span"] = tracer.start_span(
                "move2", root, chain=target_id, attempt=attempt
            )

            def after_move2(receipt) -> None:
                if receipt.success:
                    live["span"].end(success=True)
                    finish(True)
                    return
                # The target's light client has not (or no longer)
                # trusts the proven root — retry once headers flow.
                live["span"].end(success=False)
                if attempt >= MOVE2_MAX_RETRIES or self.sim.now >= self.deadline:
                    finish(False)
                    return
                self.report.move2_retries += 1
                self.sim.schedule(
                    MOVE2_RETRY_DELAY, lambda: try_move2(inclusion, attempt + 1)
                )

            tx = sign_transaction(actor.keypair, Move2Payload(bundle=bundle))
            tracer.inject(live["span"], tx.meta)
            target.wait_for(tx.tx_id, after_move2)
            self.submit(target_id, tx)

        move1 = sign_transaction(
            actor.keypair,
            Move1Payload(contract=actor.contract, target_chain=target_id),
        )
        tracer.inject(live["span"], move1.meta)
        source.wait_for(move1.tx_id, after_move1)
        self.submit(source_id, move1)


# ----------------------------------------------------------------------
# Workloads
# ----------------------------------------------------------------------


def _scoin_setup(world: ChaosWorld, on_ready: Callable[[int], None]) -> None:
    """Deploy SCoin on chain 1, one SAccount per actor, mint tokens.

    ``on_ready(total_supply)`` fires once every account holds tokens.
    """
    from repro.apps.scoin import SCoin

    tokens_each = 1000
    home = WORKLOAD_CHAINS[0]
    pending = [len(world.actors)]

    def after_deploy(receipt) -> None:
        assert receipt.success, receipt.error
        token = receipt.return_value
        world.stationary.append(token)
        for actor in world.actors:
            world.run_tx(
                home,
                actor.keypair,
                CallPayload(token, "new_account_for", (actor.keypair.address,)),
                lambda r, a=actor: after_create(a, r, token),
            )

    def after_create(actor: _Actor, receipt, token: Address) -> None:
        assert receipt.success, receipt.error
        actor.contract, _salt = receipt.return_value
        actor.location = home
        world.run_tx(
            home,
            world.owner,
            CallPayload(token, "mint_to", (actor.contract, tokens_each)),
            lambda r: after_mint(r),
        )

    def after_mint(receipt) -> None:
        assert receipt.success, receipt.error
        pending[0] -= 1
        if pending[0] == 0:
            on_ready(tokens_each * len(world.actors))

    world.run_tx(
        home, world.owner, DeployPayload(code_hash=SCoin.CODE_HASH), after_deploy
    )


def _scoin_step(world: ChaosWorld, actor: _Actor) -> None:
    """One closed-loop op: transfer to a co-located sibling if there is
    one (exercising supply conservation), else hop to the other chain."""
    if world.sim.now >= world.deadline or actor.busy:
        return

    def next_step(_ok=None) -> None:
        world.sim.schedule(world.rng.uniform(1.0, 5.0), lambda: _scoin_step(world, actor))

    siblings = [
        a
        for a in world.actors
        if a is not actor and not a.busy and a.location == actor.location
    ]
    if siblings and world.rng.random() < 0.5:
        target = world.rng.choice(siblings)

        def after(receipt) -> None:
            if receipt.success:
                world.report.actions_completed += 1
            else:
                world.report.actions_failed += 1
            next_step()

        world.run_tx(
            actor.location,
            actor.keypair,
            CallPayload(actor.contract, "transfer_tokens", (target.contract, 1)),
            after,
        )
        return
    destination = WORKLOAD_CHAINS[1] if actor.location == WORKLOAD_CHAINS[0] else WORKLOAD_CHAINS[0]
    world.move(actor, destination, next_step)


def _kitties_setup(world: ChaosWorld, on_ready: Callable[[int], None]) -> None:
    """Registry + two gen-0 cats per actor on chain 1: one stationary
    partner, one roaming cat that moves between the chains."""
    from repro.apps.kitties import KittyRegistry

    home = WORKLOAD_CHAINS[0]
    pending = [2 * len(world.actors)]

    def after_deploy(receipt) -> None:
        assert receipt.success, receipt.error
        registry = receipt.return_value
        world.stationary.append(registry)
        for actor in world.actors:
            for which in ("roamer", "partner"):
                world.run_tx(
                    home,
                    world.owner,
                    CallPayload(registry, "create_promo_kitty", (actor.keypair.address,)),
                    lambda r, a=actor, w=which: after_cat(a, w, r),
                )

    def after_cat(actor: _Actor, which: str, receipt) -> None:
        assert receipt.success, receipt.error
        if which == "roamer":
            actor.contract = receipt.return_value
            actor.location = home
        else:
            actor.partner = receipt.return_value
        pending[0] -= 1
        if pending[0] == 0:
            on_ready(0)

    world.run_tx(
        home, world.owner, DeployPayload(code_hash=KittyRegistry.CODE_HASH), after_deploy
    )


def _kitties_step(world: ChaosWorld, actor: _Actor) -> None:
    """One closed-loop op: at home, breed the roamer with its partner
    (breed + give_birth = one new movable contract); then hop away and
    back — Fig. 5's move-to-breed choreography under faults."""
    if world.sim.now >= world.deadline or actor.busy:
        return
    home = WORKLOAD_CHAINS[0]

    def next_step(_ok=None) -> None:
        world.sim.schedule(world.rng.uniform(1.0, 5.0), lambda: _kitties_step(world, actor))

    if actor.location != home:
        world.move(actor, home, next_step)
        return

    def after_breed(receipt) -> None:
        if not receipt.success:
            world.report.actions_failed += 1
            next_step()
            return
        world.run_tx(
            home,
            actor.keypair,
            CallPayload(actor.contract, "give_birth", ()),
            after_birth,
        )

    def after_birth(receipt) -> None:
        if receipt.success:
            world.report.actions_completed += 1
        else:
            world.report.actions_failed += 1
        # Hop to the other chain and come back for the next litter.
        world.move(
            actor,
            WORKLOAD_CHAINS[1],
            lambda ok: next_step(),
        )

    world.run_tx(
        home,
        actor.keypair,
        CallPayload(actor.contract, "breed_with", (actor.partner,)),
        after_breed,
    )


_WORKLOADS = {
    "scoin": (_scoin_setup, _scoin_step),
    "kitties": (_kitties_setup, _kitties_step),
}


# ----------------------------------------------------------------------
# Replication under chaos (``run_chaos(..., replicate=True)``)
# ----------------------------------------------------------------------


class _ReplicationHost:
    """The narrow node surface a ReplicationManager needs, over a
    ChaosWorld (chains + sim + telemetry, no block-production driver)."""

    def __init__(self, world: ChaosWorld):
        self.chains = world.chains
        self.sim = world.sim
        self.telemetry = world.telemetry

    def chain(self, chain_id: int) -> Chain:
        return self.chains[chain_id]


def _attach_replication(world: ChaosWorld):
    """Build (but do not yet populate) a replication manager over the
    chaos world's chains."""
    from repro.replicate.manager import ReplicationManager

    manager = ReplicationManager(_ReplicationHost(world), telemetry=world.telemetry)
    manager.start()
    return manager


def _attach_health(world: ChaosWorld, checker, injector, manager):
    """Build the chaos-default :class:`~repro.health.monitor
    .HealthMonitor` over the world and wire the flight-recorder
    triggers (injected faults, invariant violations).

    The probe set deliberately omits :class:`~repro.health.probes
    .ConflictRateProbe`: its counters only exist on parallel chains, so
    including it would break the byte-identical-across-worker-counts
    contract the detection gate asserts.
    """
    from repro.health.monitor import HealthMonitor
    from repro.health.probes import (
        ChainLivenessProbe,
        MempoolDepthProbe,
        RelayLagProbe,
        ReplicaStalenessProbe,
    )

    monitor = HealthMonitor(world.sim, telemetry=world.telemetry)
    monitor.add_probe(ChainLivenessProbe(world.chains))
    monitor.add_probe(RelayLagProbe(world.relays.values()))
    monitor.add_probe(MempoolDepthProbe(world.chains))
    if manager is not None:
        monitor.add_probe(ReplicaStalenessProbe(manager))
    checker.on_violation = monitor.on_violation
    injector.observers.append(monitor.on_fault)
    monitor.start()
    return monitor


def _check_replicas(world: ChaosWorld, manager) -> None:
    """The replication safety invariant, asserted at every block:

    a ``LIVE`` mirror (a) was verified against a header that is still on
    the canonical branch of the source as the target sees it, and (b)
    serves exactly the storage image the source committed at the
    mirror's synced height — never a fork-only or torn intermediate
    state.  Halted/tombstoned mirrors are unavailable by construction
    (their replicated storage is wiped), so passing here means no
    orphaned state is reachable through any read path.
    """
    from repro.chain.lightclient import ForkAwareHeaderStore
    from repro.errors import InvariantViolation

    for (source_id, target_id), relay in manager._relays.items():
        source = world.chains[source_id]
        target = world.chains[target_id]
        store = target.light_client.store_for(source_id)
        for contract, mirror in relay.mirrors.items():
            if not mirror.available:
                continue
            world.report.replica_checks += 1
            if (
                mirror.applied_header is not None
                and isinstance(store, ForkAwareHeaderStore)
                and not store.is_canonical(mirror.applied_header)
            ):
                raise InvariantViolation(
                    f"LIVE mirror of {contract} on chain {target_id} rests "
                    f"on an orphaned chain-{source_id} header at height "
                    f"{mirror.applied_header.height}"
                )
            log = source.replication_log(contract)
            if log is not None and log.base_height <= mirror.synced_height <= log.head_height:
                expected = log.image_at(mirror.synced_height)
                if mirror.image != expected:
                    raise InvariantViolation(
                        f"mirror of {contract} on chain {target_id} serves "
                        f"a torn image at height {mirror.synced_height}"
                    )


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------


def run_chaos(
    seed: int,
    duration: float = 300.0,
    workload: str = "scoin",
    plan: Optional[FaultPlan] = None,
    intensity: float = 1.0,
    pow_peer: bool = False,
    check_roots: bool = True,
    telemetry: Optional[Telemetry] = None,
    executor_workers: int = 0,
    executor_backend: str = "thread",
    replicate: bool = False,
    health: bool = False,
    on_monitor: Optional[Callable] = None,
) -> ChaosReport:
    """One fully seeded chaos run; raises
    :class:`~repro.errors.InvariantViolation` on the first unsafe block.

    ``plan`` defaults to ``FaultPlan.from_seed(seed, duration, ...)``
    with reorg faults enabled iff ``pow_peer`` adds the PoW bystander.
    Re-invoking with the same arguments replays the run exactly —
    including with a different ``executor_workers`` value, which must
    not change any observable outcome (the parallel-determinism
    property tests re-run the seed matrix at several worker counts and
    compare these reports field by field).

    ``replicate=True`` mirrors every actor contract onto the opposite
    workload chain through a
    :class:`~repro.replicate.manager.ReplicationManager` and re-asserts
    the replication safety invariant (:func:`_check_replicas`) at every
    block: a serving mirror never rests on an orphaned header and never
    serves a torn image — it rolls back with the source or halts.
    Moves then also exercise the tombstone/re-home path under faults.

    ``health=True`` attaches a read-only
    :class:`~repro.health.monitor.HealthMonitor` (chain liveness, relay
    lag, mempool depth, plus replica staleness under ``replicate``);
    the report then carries the deterministic alert log, the final
    health map and the last postmortem bundle as canonical JSON.
    ``on_monitor`` (if given) receives the monitor right after
    construction, so callers keep a handle to it even when an
    invariant violation aborts the run mid-flight.
    """
    if workload not in _WORKLOADS:
        raise ValueError(f"unknown workload {workload!r}")
    setup, step = _WORKLOADS[workload]

    world = ChaosWorld(
        seed,
        pow_peer=pow_peer,
        telemetry=telemetry,
        executor_workers=executor_workers,
        executor_backend=executor_backend,
    )
    try:
        report = ChaosReport(seed=seed, duration=duration, workload=workload)
        world.report = report
        # Leave a quiescent tail: no new operations in the last 10 %.
        world.deadline = 0.9 * duration

        if plan is None:
            pow_chains = (
                {POW_CHAIN: world.chains[POW_CHAIN].params.confirmation_depth}
                if pow_peer
                else None
            )
            plan = FaultPlan.from_seed(
                seed,
                duration=duration,
                pow_chains=pow_chains,
                intensity=intensity,
            )
        report.plan_counts = plan.counts()

        checker = InvariantChecker(world.chains.values(), check_roots=check_roots)
        checker.attach()
        injector = FaultInjector(
            world.sim,
            network=world.network,
            chains=world.chains,
            engines={cid: world.engines[cid] for cid in WORKLOAD_CHAINS},
            relays=world.relays,
            seed=seed,
        )
        injector.apply(plan)

        manager = _attach_replication(world) if replicate else None
        if manager is not None:

            def on_block(_block, _receipts) -> None:
                _check_replicas(world, manager)

            for chain_id in WORKLOAD_CHAINS:
                world.chains[chain_id].subscribe(on_block)

        monitor = _attach_health(world, checker, injector, manager) if health else None
        if monitor is not None and on_monitor is not None:
            on_monitor(monitor)

        def on_ready(total_supply: int) -> None:
            if total_supply:
                checker.expected_token_supply = total_supply
            if manager is not None:
                home, away = WORKLOAD_CHAINS
                # Stationary contracts (token/registry) are the realistic
                # replicas: hot, read-dominated, never moving.  The roaming
                # actor contracts ride along to chaos-test the
                # tombstone-on-move and re-home paths.
                for contract in world.stationary:
                    manager.replicate(contract, home, [away])
                for actor in world.actors:
                    manager.replicate(actor.contract, home, [away])
            for actor in world.actors:
                step(world, actor)

        world.start()
        setup(world, on_ready)
        world.sim.run(until=duration)
        checker.final_check()
        if manager is not None:
            _check_replicas(world, manager)
            report.replica_rehomes = manager.rehomes
            for relay in manager._relays.values():
                report.replica_updates += relay.updates
                report.replica_halts += relay.halts
                report.replica_tombstones += relay.tombstones

        if monitor is not None:
            monitor.stop()
            report.alerts_fired = sum(
                1 for entry in monitor.alert_log() if entry["state"] == "firing"
            )
            report.health_transitions = len(monitor.transitions)
            report.health_postmortems = monitor.recorder.postmortems_written
            report.health_states = monitor.states_text()
            report.alert_log = monitor.alert_log_json()
            report.postmortem_bundle = monitor.last_postmortem_json()
        report.injected = dict(injector.injected)
        report.blocks = {cid: chain.height for cid, chain in world.chains.items()}
        report.final_roots = {
            cid: chain.state.committed_root.hex() for cid, chain in world.chains.items()
        }
        report.invariant_checks = checker.checks_run
        report.messages_dropped = world.network.messages_dropped
        report.messages_duplicated = world.network.messages_duplicated
        for chain in world.chains.values():
            for peer_id in world.chains:
                store = chain.light_client.store_for(peer_id)
                if store is not None:
                    report.equivocations_rejected += getattr(store, "equivocations", 0)
                    report.deep_reorgs_detected += getattr(store, "deep_reorgs", 0)
        return report
    finally:
        # Release every chain's worker pools even when an invariant
        # violation aborts the run mid-flight: a chaos sweep must
        # never leak speculation or verifier processes.
        for chain in world.chains.values():
            chain.close()
