"""Cross-chain safety invariants, checked after every simulated block.

The Move Prover (arXiv:2110.08362) machine-checks invariants of Move
*programs*; this module does the dynamic analogue for the Move
*protocol*: every property the paper's safety argument rests on is
re-asserted against the full multi-chain state each time any chain
commits a block, so a distributed-systems bug surfaces at the first
block that violates it — with the seed to replay it.

The four invariants:

I1 **single mutability** — a contract is *active* (``L_c`` equals the
   hosting chain's id) on at most one chain at any block boundary; all
   other copies are locked relics (Section III-B).

I2 **move-nonce monotonicity** — per chain, a contract's move nonce
   never decreases, and the active copy always carries the highest
   nonce that exists anywhere; a Move2 replay of a stale bundle
   (Fig. 2) would recreate an active copy *below* some relic's nonce
   and is caught here even if the runtime's guard were broken.

I3 **pegged-supply conservation** — every
   :class:`~repro.core.relay.RelayedFunds` escrow backs its minted
   pegged tokens with at least as much locked native currency
   (``minted <= amount`` on the current copy), so the relay can never
   inflate value; optionally, the total movable-token supply
   (:class:`~repro.apps.scoin.SAccount` balances over current copies)
   must equal the amount the experiment minted.

I4 **commitment integrity** — each chain's committed account tree
   recommits every live record exactly: the membership proof of every
   account/contract verifies against ``committed_root`` and its leaf
   equals the canonical encoding of the in-memory record, with the
   storage root matching the canonical (sorted-rebuild) definition.
   A write that dodged dirty tracking, or a trie fold that diverged
   from the canonical root, fails here on the very next block.

Violations raise :class:`~repro.errors.InvariantViolation` immediately,
aborting the simulation at the first bad block.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.chain.chain import Chain
from repro.crypto.keys import Address
from repro.errors import InvariantViolation
from repro.statedb.state import (
    ContractRecord,
    compute_storage_root,
    encode_account_leaf,
    encode_contract_leaf,
)


def _slot_int(record: ContractRecord, key: bytes) -> int:
    raw = record.storage.get(key, b"")
    return int.from_bytes(raw, "big") if raw else 0


class InvariantChecker:
    """Asserts the paper's cross-chain safety properties continuously."""

    def __init__(
        self,
        chains: Iterable[Chain],
        check_roots: bool = True,
        expected_token_supply: Optional[int] = None,
    ):
        self.chains: List[Chain] = list(chains)
        self.check_roots = check_roots
        #: when set, I3 additionally asserts the global SAccount token
        #: supply equals this amount (set it once minting is finished)
        self.expected_token_supply = expected_token_supply
        self.checks_run = 0
        self.violations_found = 0
        #: called with the formatted message just before a violation
        #: raises — the health plane's flight recorder dumps its
        #: postmortem bundle here, while the world is still intact
        self.on_violation: Optional[object] = None
        self._nonce_high: Dict[Tuple[int, bytes], int] = {}
        self._subscriptions: List[Tuple[Chain, object]] = []
        self._code_hashes_loaded = False
        self._saccount_hash = b""
        self._relay_hash = b""
        self._token_key = b""
        self._minted_key = b""
        self._amount_key = b""

    # ------------------------------------------------------------------

    def attach(self) -> None:
        """Subscribe to every chain: check after each produced block."""
        for chain in self.chains:
            listener = lambda block, _receipts, c=chain: self.check_all(c)
            chain.subscribe(listener)
            self._subscriptions.append((chain, listener))

    def detach(self) -> None:
        """Stop checking (e.g. before a deliberately unsound teardown)."""
        for chain, listener in self._subscriptions:
            chain.unsubscribe(listener)
        self._subscriptions.clear()

    def _fail(self, invariant: str, message: str) -> None:
        self.violations_found += 1
        formatted = f"[{invariant}] {message}"
        if self.on_violation is not None:
            self.on_violation(formatted)
        raise InvariantViolation(formatted)

    # ------------------------------------------------------------------

    def check_all(self, committed_chain: Optional[Chain] = None) -> None:
        """Run every invariant; ``committed_chain`` scopes the (costly)
        commitment-integrity sweep to the chain that just committed."""
        self.checks_run += 1
        copies = self._collect_copies()
        self._check_single_mutability(copies)
        self._check_nonce_monotonicity(copies)
        self._check_conservation(copies)
        if self.check_roots:
            targets = [committed_chain] if committed_chain is not None else self.chains
            for chain in targets:
                self._check_commitment_integrity(chain)

    def final_check(self) -> None:
        """Full sweep at the end of a run: every invariant on every
        chain, plus each ledger's structural self-audit."""
        self.check_all(committed_chain=None)
        for chain in self.chains:
            chain.verify_chain()

    # ------------------------------------------------------------------
    # I1 + I2 + I3 helpers
    # ------------------------------------------------------------------

    def _collect_copies(self) -> Dict[bytes, List[Tuple[Chain, ContractRecord]]]:
        copies: Dict[bytes, List[Tuple[Chain, ContractRecord]]] = {}
        for chain in self.chains:
            for address, record in chain.state.contracts.items():
                copies.setdefault(address.raw, []).append((chain, record))
        return copies

    @staticmethod
    def _current_copy(
        copies: List[Tuple[Chain, ContractRecord]]
    ) -> Tuple[Optional[Chain], ContractRecord]:
        """The copy holding the contract's current state: the active one
        if any, else the highest-nonce locked relic (mid-move)."""
        for chain, record in copies:
            if record.location == chain.chain_id:
                return chain, record
        chain, record = max(copies, key=lambda pair: pair[1].move_nonce)
        return None, record

    def _check_single_mutability(self, copies) -> None:
        for raw, chain_copies in copies.items():
            active = [
                chain.chain_id
                for chain, record in chain_copies
                if record.location == chain.chain_id
            ]
            if len(active) > 1:
                self._fail(
                    "I1-single-mutability",
                    f"contract {Address(raw)} is active on chains {active}",
                )

    def _check_nonce_monotonicity(self, copies) -> None:
        for raw, chain_copies in copies.items():
            highest = max(record.move_nonce for _chain, record in chain_copies)
            for chain, record in chain_copies:
                key = (chain.chain_id, raw)
                seen = self._nonce_high.get(key, -1)
                if record.move_nonce < seen:
                    self._fail(
                        "I2-nonce-monotonic",
                        f"contract {Address(raw)} on chain {chain.chain_id} "
                        f"regressed its move nonce {seen} -> {record.move_nonce}",
                    )
                self._nonce_high[key] = record.move_nonce
                if (
                    record.location == chain.chain_id
                    and record.move_nonce < highest
                ):
                    self._fail(
                        "I2-nonce-monotonic",
                        f"active copy of {Address(raw)} on chain {chain.chain_id} "
                        f"has nonce {record.move_nonce} < relic nonce {highest} "
                        "(stale Move2 replayed)",
                    )

    def _load_code_hashes(self) -> None:
        if self._code_hashes_loaded:
            return
        from repro.apps.scoin import SAccount
        from repro.core.relay import RelayedFunds

        self._saccount_hash = SAccount.CODE_HASH
        self._relay_hash = RelayedFunds.CODE_HASH
        self._token_key = SAccount.token_count.key
        self._minted_key = RelayedFunds.minted.key
        self._amount_key = RelayedFunds.amount.key
        self._code_hashes_loaded = True

    def _check_conservation(self, copies) -> None:
        self._load_code_hashes()
        token_supply = 0
        saw_accounts = False
        for raw, chain_copies in copies.items():
            code_hash = chain_copies[0][1].code_hash
            if code_hash == self._relay_hash:
                _chain, current = self._current_copy(chain_copies)
                minted = _slot_int(current, self._minted_key)
                amount = _slot_int(current, self._amount_key)
                if minted > amount:
                    self._fail(
                        "I3-pegged-supply",
                        f"escrow {Address(raw)} minted {minted} pegged tokens "
                        f"against only {amount} locked units",
                    )
            elif code_hash == self._saccount_hash:
                saw_accounts = True
                _chain, current = self._current_copy(chain_copies)
                token_supply += _slot_int(current, self._token_key)
        if (
            self.expected_token_supply is not None
            and saw_accounts
            and token_supply != self.expected_token_supply
        ):
            self._fail(
                "I3-token-supply",
                f"movable-token supply is {token_supply}, "
                f"expected {self.expected_token_supply}",
            )

    # ------------------------------------------------------------------
    # I4: commitment integrity
    # ------------------------------------------------------------------

    def _check_commitment_integrity(self, chain: Chain) -> None:
        state = chain.state
        if state._dirty:
            # Mid-maintenance (e.g. GC between blocks): the dicts are
            # deliberately ahead of the tree until the next commit.
            return
        root = state.committed_root
        factory = state.tree_factory
        for address, record in state.contracts.items():
            canonical_storage = compute_storage_root(factory, record.storage)
            expected_leaf = encode_contract_leaf(record, canonical_storage)
            self._check_leaf(chain, address, expected_leaf, root)
            live_root = state.storage_trie_snapshot(address).root_hash
            if live_root != canonical_storage:
                self._fail(
                    "I4-commitment",
                    f"chain {chain.chain_id} live storage trie of {address} "
                    "diverged from the canonical sorted rebuild",
                )
        for address, account in state.accounts.items():
            self._check_leaf(chain, address, encode_account_leaf(account), root)

    def _check_leaf(
        self, chain: Chain, address: Address, expected_leaf: bytes, root: bytes
    ) -> None:
        try:
            proof = chain.state.prove_account(address)
        except KeyError:
            self._fail(
                "I4-commitment",
                f"chain {chain.chain_id} never committed {address}",
            )
            return
        if proof.value != expected_leaf:
            self._fail(
                "I4-commitment",
                f"chain {chain.chain_id} committed a stale leaf for {address} "
                "(a write dodged dirty tracking?)",
            )
        if proof.computed_root() != root:
            self._fail(
                "I4-commitment",
                f"chain {chain.chain_id} account proof of {address} does not "
                "reach the committed root",
            )
