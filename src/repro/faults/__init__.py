"""Deterministic fault injection + cross-chain invariant checking.

See ``docs/FAULTS.md`` for the fault model and the four invariants.
"""

from repro.faults.injector import FaultInjector
from repro.faults.invariants import InvariantChecker
from repro.faults.plan import FAULT_KINDS, FaultEvent, FaultPlan

__all__ = [
    "FAULT_KINDS",
    "FaultEvent",
    "FaultPlan",
    "FaultInjector",
    "InvariantChecker",
]
