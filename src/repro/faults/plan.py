"""Deterministic fault schedules (FoundationDB-style simulation input).

A :class:`FaultPlan` is an immutable, totally ordered list of
:class:`FaultEvent` records — *when* to inject *which* adversity into a
simulated deployment.  Plans are pure data: the same plan applied by
:class:`~repro.faults.injector.FaultInjector` to the same seeded world
replays the same run byte-for-byte, which is what makes a failing chaos
seed a unit test rather than an anecdote.

:meth:`FaultPlan.from_seed` derives a complete mixed-fault schedule from
a single integer — the only input a failure report needs to carry.  The
generator is careful to keep every fault *survivable*:

* at most one validator per chain is crashed or stalled at a time
  (``f = 1`` against the ``f < n/3`` bound of the default 4-validator
  chaos chains), and every crash schedules its recovery;
* partitions cut a minority off (the quorum side keeps committing) and
  always heal;
* header withholding and staleness windows end, so relays catch up;
* all faults start before ``0.7 × duration`` and end by
  ``0.85 × duration``, leaving a quiescent tail for the workload to
  drain and the final invariant sweep to run on a settled system.

Reorg events are generated only for chains named in ``pow_chains`` —
BFT chains have instant finality and never reorg.  Depths are drawn
from ``1 .. p-1`` (absorbable below the confirmation depth); pass
``deep_reorg=True`` to append one ``p``-deep reorg, which observers
must *detect* (it increments their stores' ``deep_reorgs`` counter),
never silently absorb.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Mapping, Sequence, Tuple

from repro.errors import FaultPlanError

#: every fault kind the injector understands
FAULT_KINDS = (
    "drop",              # window: drop messages with probability `magnitude`
    "duplicate",         # window: duplicate messages with probability `magnitude`
    "delay",             # window: add uniform(0, magnitude) seconds of latency
    "partition",         # window: cut `target` (endpoint names, comma-joined) off
    "crash",             # crash validator `target` for `duration`, then recover
    "stall_proposer",    # same mechanics, semantically a freeze, not a death
    "withhold_headers",  # pause the chain's header relay for `duration`
    "stale_headers",     # inflate the relay's delay by `magnitude` for `duration`
    "equivocate",        # feed observers a conflicting header at the current head
    "reorg",             # feed observers a competing branch `magnitude` deep
)

#: message-level kinds applied through the transport fault hook
MESSAGE_KINDS = ("drop", "duplicate", "delay")


@dataclass(frozen=True, order=True)
class FaultEvent:
    """One scheduled fault.

    ``chain`` scopes chain-directed faults (0 = whole network);
    ``target`` names a validator or partition group; ``duration`` bounds
    windowed faults; ``magnitude`` is the kind-specific knob
    (probability, extra seconds, or reorg depth).
    """

    time: float
    kind: str
    chain: int = 0
    target: str = ""
    duration: float = 0.0
    magnitude: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultPlanError(f"unknown fault kind {self.kind!r}")
        if self.time < 0 or self.duration < 0:
            raise FaultPlanError(f"negative time in {self!r}")

    def encode(self) -> bytes:
        """Canonical bytes of this event (for plan fingerprinting)."""
        return "|".join(
            (
                repr(self.time),
                self.kind,
                str(self.chain),
                self.target,
                repr(self.duration),
                repr(self.magnitude),
            )
        ).encode()


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, ordered fault schedule."""

    seed: int
    duration: float
    events: Tuple[FaultEvent, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(sorted(self.events)))

    def encode(self) -> bytes:
        """Canonical bytes of the whole plan — two plans are the same
        schedule iff their encodings are equal."""
        head = f"plan|{self.seed}|{repr(self.duration)}".encode()
        return b"\n".join((head,) + tuple(event.encode() for event in self.events))

    def counts(self) -> Dict[str, int]:
        """How many events of each kind the plan carries."""
        out: Dict[str, int] = {}
        for event in self.events:
            out[event.kind] = out.get(event.kind, 0) + 1
        return out

    # ------------------------------------------------------------------

    @classmethod
    def from_seed(
        cls,
        seed: int,
        duration: float = 300.0,
        validators: Mapping[int, Sequence[str]] = None,
        pow_chains: Mapping[int, int] = None,
        intensity: float = 1.0,
        deep_reorg: bool = False,
        kinds: Sequence[str] = None,
    ) -> "FaultPlan":
        """Generate a survivable mixed-fault schedule from ``seed``.

        ``validators`` maps chain id to its validator names (defaults to
        the standard two-chain chaos world: chains 1 and 2, four
        validators each, named like ``val-1-0``).  ``pow_chains`` maps a
        forking chain's id to its confirmation depth ``p`` and enables
        reorg events against it.  ``kinds`` restricts the draw to a
        subset of :data:`FAULT_KINDS` (for deployments without, say, a
        header relay to withhold).  The derivation is deterministic: the
        same arguments always produce a byte-identical plan.
        """
        if validators is None:
            validators = {
                chain_id: [f"val-{chain_id}-{i}" for i in range(4)]
                for chain_id in (1, 2)
            }
        pow_chains = dict(pow_chains or {})
        rng = random.Random(seed)
        last_fault_start = 0.70 * duration
        last_fault_end = 0.85 * duration
        events = []
        #: per-chain earliest time the next crash/stall may begin, so at
        #: most one validator per chain is ever down at once
        crash_free_at = {chain_id: 0.0 for chain_id in validators}

        count = max(4, int(duration / 25.0 * intensity))
        drawable = [
            "drop", "duplicate", "delay", "partition",
            "crash", "stall_proposer", "withhold_headers",
            "stale_headers", "equivocate",
        ]
        draw_weights = [2, 2, 2, 1, 2, 1, 1, 1, 1]
        if pow_chains:
            drawable.append("reorg")
            draw_weights.append(2)
        if kinds is not None:
            allowed = set(kinds)
            unknown = allowed - set(FAULT_KINDS)
            if unknown:
                raise FaultPlanError(f"unknown fault kinds {sorted(unknown)}")
            draw_weights = [
                w for k, w in zip(drawable, draw_weights) if k in allowed
            ]
            drawable = [k for k in drawable if k in allowed]
            if not drawable:
                raise FaultPlanError("kinds filter leaves nothing to draw")

        for _ in range(count):
            kind = rng.choices(drawable, weights=draw_weights)[0]
            start = rng.uniform(0.05 * duration, last_fault_start)
            chain_id = rng.choice(sorted(validators))
            if kind in MESSAGE_KINDS:
                window = rng.uniform(5.0, 25.0)
                window = min(window, last_fault_end - start)
                magnitude = {
                    "drop": rng.uniform(0.05, 0.4),
                    "duplicate": rng.uniform(0.1, 0.6),
                    "delay": rng.uniform(0.5, 4.0),
                }[kind]
                events.append(
                    FaultEvent(start, kind, duration=window, magnitude=magnitude)
                )
            elif kind == "partition":
                window = min(rng.uniform(10.0, 30.0), last_fault_end - start)
                # Cut one validator off: the remaining majority keeps
                # its quorum, so the chain stays live through the split.
                isolated = rng.choice(list(validators[chain_id]))
                events.append(
                    FaultEvent(
                        start, kind, chain=chain_id, target=isolated, duration=window
                    )
                )
            elif kind in ("crash", "stall_proposer"):
                window = min(rng.uniform(10.0, 40.0), last_fault_end - start)
                start = max(start, crash_free_at[chain_id])
                if start > last_fault_start or start + window > last_fault_end:
                    continue  # no survivable slot left on this chain
                victim = rng.choice(list(validators[chain_id]))
                crash_free_at[chain_id] = start + window + 5.0
                events.append(
                    FaultEvent(
                        start, kind, chain=chain_id, target=victim, duration=window
                    )
                )
            elif kind == "withhold_headers":
                window = min(rng.uniform(10.0, 30.0), last_fault_end - start)
                events.append(
                    FaultEvent(start, kind, chain=chain_id, duration=window)
                )
            elif kind == "stale_headers":
                window = min(rng.uniform(10.0, 30.0), last_fault_end - start)
                events.append(
                    FaultEvent(
                        start, kind, chain=chain_id,
                        duration=window, magnitude=rng.uniform(1.0, 10.0),
                    )
                )
            elif kind == "equivocate":
                events.append(FaultEvent(start, kind, chain=chain_id))
            elif kind == "reorg":
                reorg_chain = rng.choice(sorted(pow_chains))
                depth_cap = max(1, pow_chains[reorg_chain] - 1)
                depth = rng.randint(1, depth_cap)
                events.append(
                    FaultEvent(start, kind, chain=reorg_chain, magnitude=float(depth))
                )

        if deep_reorg:
            if not pow_chains:
                raise FaultPlanError("deep_reorg requires at least one pow chain")
            reorg_chain = rng.choice(sorted(pow_chains))
            events.append(
                FaultEvent(
                    rng.uniform(0.4 * duration, last_fault_start),
                    "reorg",
                    chain=reorg_chain,
                    magnitude=float(pow_chains[reorg_chain]),
                )
            )

        return cls(seed=seed, duration=duration, events=tuple(events))
