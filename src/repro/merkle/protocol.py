"""Typed protocols over the authenticated structures.

Everything that commits state in this repository is "a Merkle-tree" to
the paper; this module gives that notion a static type so the higher
layers (:mod:`repro.statedb`, :mod:`repro.chain`, :mod:`repro.core`)
can hold trees without poking at implementation privates or sprinkling
``type: ignore`` over duck-typed calls.

Two capability levels exist:

* :class:`MerkleCommitment` — anything with a ``root_hash`` and an
  O(1) ``snapshot()``.  The binary transaction tree qualifies.
* :class:`AuthenticatedTree` — a mutable authenticated *map* (the IAVL
  tree and the Patricia trie): keyed get/set/delete, membership proofs,
  ordered iteration.

``snapshot()`` is cheap by construction: every implementation stores
immutable, structurally shared nodes, so a snapshot is one new facade
object holding the same root pointer.  The snapshot stays valid forever
as the live tree evolves — the chain retains one per block to serve
historical proofs.

``history_independent`` declares whether the root is a function of the
*content* alone (Patricia trie: yes) or of the operation history too
(IAVL: AVL rotation order leaks into the shape).  The incremental
commitment layer in :mod:`repro.statedb.state` keys its strategy off
this flag: history-independent trees fold changed slots in place, while
history-dependent ones must canonically refold when a key set changes.
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional, Protocol, Tuple, runtime_checkable

from repro.merkle.proof import MembershipProof


@runtime_checkable
class MerkleCommitment(Protocol):
    """Anything committing data under a Merkle root."""

    @property
    def root_hash(self) -> bytes:
        """Root digest committing the full content."""
        ...

    def snapshot(self) -> "MerkleCommitment":
        """O(1) frozen view sharing the immutable node structure."""
        ...


@runtime_checkable
class AuthenticatedTree(Protocol):
    """A mutable authenticated map producing ``{v} ↦ m`` proofs.

    Implemented by :class:`~repro.merkle.iavl.IAVLTree` and
    :class:`~repro.merkle.trie.MerklePatriciaTrie`; the world state and
    per-contract storage commitments are built on this interface.
    """

    #: True when the root depends only on the key/value content, not on
    #: the order the operations arrived in.
    history_independent: bool

    @property
    def root_hash(self) -> bytes:
        """Root digest committing the full key/value map."""
        ...

    def set(self, key: bytes, value: bytes) -> None:
        """Insert or overwrite ``key``."""
        ...

    def get(self, key: bytes) -> Optional[bytes]:
        """Return the value for ``key`` or ``None``."""
        ...

    def delete(self, key: bytes) -> bool:
        """Remove ``key``; returns whether it was present."""
        ...

    def prove(self, key: bytes) -> MembershipProof:
        """Build a ``{v} ↦ m`` membership proof for ``key``."""
        ...

    def snapshot(self) -> "AuthenticatedTree":
        """O(1) frozen copy sharing the immutable node structure.

        The copy never changes as the live tree evolves; writing to the
        copy forks it (persistent-structure semantics).
        """
        ...

    def items(self) -> Iterator[Tuple[bytes, bytes]]:
        """Yield the committed (key, value) pairs."""
        ...

    def __contains__(self, key: object) -> bool: ...


#: A chain's tree flavour: zero-arg constructor of its authenticated map.
TreeFactory = Callable[[], AuthenticatedTree]
