"""Tendermint-style IAVL tree: a balanced, keyed, authenticated map.

The Burrow-flavoured chains commit their application state with this
structure, mirroring Tendermint's modified AVL tree (paper Section II,
reference [16]).  Only leaves carry values; inner nodes route lookups
(an inner node's key is the smallest key of its right subtree) and are
rebalanced with standard AVL rotations, keeping depth — and therefore
proof length — logarithmic.

Nodes are immutable; updates share unchanged subtrees, so recomputing
the root after a block touches only the modified paths.

Digests::

    leaf  = keccak(b"\\x00" + key + value)
    inner = keccak(b"\\x01" + left_digest + right_digest)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.crypto.hashing import keccak
from repro.merkle.proof import MembershipProof, ProofStep

_LEAF_PREFIX = b"\x00"
_NODE_PREFIX = b"\x01"

EMPTY_ROOT = keccak(b"empty-iavl")


@dataclass(frozen=True)
class _Node:
    key: bytes
    value: Optional[bytes]  # None for inner nodes
    left: Optional["_Node"]
    right: Optional["_Node"]
    height: int
    digest: bytes

    @property
    def is_leaf(self) -> bool:
        return self.value is not None


def _leaf(key: bytes, value: bytes) -> _Node:
    digest = keccak(_LEAF_PREFIX, key, value)
    return _Node(key=key, value=value, left=None, right=None, height=0, digest=digest)


def _inner(left: _Node, right: _Node) -> _Node:
    digest = keccak(_NODE_PREFIX, left.digest, right.digest)
    key = _min_key(right)
    height = 1 + max(left.height, right.height)
    return _Node(key=key, value=None, left=left, right=right, height=height, digest=digest)


def _min_key(node: _Node) -> bytes:
    while not node.is_leaf:
        node = node.left  # type: ignore[assignment]
    return node.key


def _balance_factor(node: _Node) -> int:
    assert node.left is not None and node.right is not None
    return node.left.height - node.right.height


def _rotate_right(node: _Node) -> _Node:
    left = node.left
    assert left is not None and left.left is not None and left.right is not None
    return _inner(left.left, _inner(left.right, node.right))  # type: ignore[arg-type]


def _rotate_left(node: _Node) -> _Node:
    right = node.right
    assert right is not None and right.left is not None and right.right is not None
    return _inner(_inner(node.left, right.left), right.right)  # type: ignore[arg-type]


def _rebalance(node: _Node) -> _Node:
    if node.is_leaf:
        return node
    factor = _balance_factor(node)
    if factor > 1:
        left = node.left
        assert left is not None
        if not left.is_leaf and _balance_factor(left) < 0:
            node = _inner(_rotate_left(left), node.right)  # type: ignore[arg-type]
        return _rotate_right(node)
    if factor < -1:
        right = node.right
        assert right is not None
        if not right.is_leaf and _balance_factor(right) > 0:
            node = _inner(node.left, _rotate_right(right))  # type: ignore[arg-type]
        return _rotate_left(node)
    return node


def _insert(node: Optional[_Node], key: bytes, value: bytes) -> _Node:
    if node is None:
        return _leaf(key, value)
    if node.is_leaf:
        if node.key == key:
            return _leaf(key, value)  # overwrite
        new = _leaf(key, value)
        if key < node.key:
            return _inner(new, node)
        return _inner(node, new)
    if key < node.key:
        return _rebalance(_inner(_insert(node.left, key, value), node.right))  # type: ignore[arg-type]
    return _rebalance(_inner(node.left, _insert(node.right, key, value)))  # type: ignore[arg-type]


def _delete(node: Optional[_Node], key: bytes) -> Tuple[Optional[_Node], bool]:
    """Return (new subtree, removed?)."""
    if node is None:
        return None, False
    if node.is_leaf:
        if node.key == key:
            return None, True
        return node, False
    if key < node.key:
        new_left, removed = _delete(node.left, key)
        if not removed:
            return node, False
        if new_left is None:
            return node.right, True
        return _rebalance(_inner(new_left, node.right)), True  # type: ignore[arg-type]
    new_right, removed = _delete(node.right, key)
    if not removed:
        return node, False
    if new_right is None:
        return node.left, True
    return _rebalance(_inner(node.left, new_right)), True  # type: ignore[arg-type]


class IAVLTree:
    """Mutable facade over the persistent node structure."""

    #: AVL rotation order leaks into the shape: the root is a function
    #: of the full operation history, not just the final content (all
    #: replicas applying the same ordered writes still agree).
    history_independent = False

    def __init__(self) -> None:
        self._root: Optional[_Node] = None

    def snapshot(self) -> "IAVLTree":
        """O(1) frozen copy sharing the immutable node structure.

        The copy never changes as this tree evolves; writing to the
        copy forks it (persistent-structure semantics).
        """
        clone = IAVLTree()
        clone._root = self._root
        return clone

    @property
    def root_hash(self) -> bytes:
        """Merkle root committing the full key/value map."""
        if self._root is None:
            return EMPTY_ROOT
        return self._root.digest

    def set(self, key: bytes, value: bytes) -> None:
        """Insert or overwrite ``key``."""
        self._root = _insert(self._root, key, value)

    def get(self, key: bytes) -> Optional[bytes]:
        """Return the value for ``key`` or ``None``."""
        node = self._root
        while node is not None:
            if node.is_leaf:
                return node.value if node.key == key else None
            node = node.left if key < node.key else node.right
        return None

    def delete(self, key: bytes) -> bool:
        """Remove ``key``; returns whether it was present."""
        self._root, removed = _delete(self._root, key)
        return removed

    def __contains__(self, key: bytes) -> bool:
        return self.get(key) is not None

    def __len__(self) -> int:
        return sum(1 for _ in self.items())

    def items(self) -> Iterator[Tuple[bytes, bytes]]:
        """Yield (key, value) pairs in key order."""
        stack: List[_Node] = []
        node = self._root
        while stack or node is not None:
            while node is not None:
                stack.append(node)
                node = node.left
            node = stack.pop()
            if node.is_leaf:
                assert node.value is not None
                yield node.key, node.value
            node = node.right

    def prove(self, key: bytes) -> MembershipProof:
        """Build a ``{v} ↦ m`` membership proof for ``key``.

        Raises :class:`KeyError` if the key is absent (non-membership
        proofs are not needed by the Move protocol).
        """
        path: List[Tuple[_Node, bool]] = []  # (inner node, went_left)
        node = self._root
        while node is not None and not node.is_leaf:
            went_left = key < node.key
            path.append((node, went_left))
            node = node.left if went_left else node.right
        if node is None or node.key != key:
            raise KeyError(key.hex())
        assert node.value is not None
        steps: List[ProofStep] = []
        for inner, went_left in reversed(path):
            assert inner.left is not None and inner.right is not None
            if went_left:
                steps.append(ProofStep(prefix=_NODE_PREFIX, suffix=inner.right.digest))
            else:
                steps.append(ProofStep(prefix=_NODE_PREFIX + inner.left.digest, suffix=b""))
        return MembershipProof(
            key=key, value=node.value, leaf_prefix=_LEAF_PREFIX, steps=steps
        )

    def height(self) -> int:
        """Tree height (0 for empty or single leaf)."""
        return self._root.height if self._root is not None else 0
