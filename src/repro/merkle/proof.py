"""The common ``{v} ↦ m`` proof interface.

Every authenticated structure in :mod:`repro.merkle` produces a
:class:`MembershipProof`: the claimed key/value plus an ordered list of
:class:`ProofStep` siblings.  Recomputing the root from the leaf through
the steps and comparing against a trusted root ``m`` implements the
paper's ``VP(V ↦ m)`` predicate; :func:`verify_proof` is that predicate.

The step encoding is deliberately structure-agnostic: each step supplies
the byte string to hash *around* the running digest (prefix + suffix),
so binary trees, IAVL nodes and trie nodes all serialize into the same
proof shape and a single verifier.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.crypto.hashing import keccak


@dataclass(frozen=True)
class ProofStep:
    """One level of a Merkle proof.

    The parent digest is ``keccak(prefix + child_digest + suffix)``,
    where ``child_digest`` is the digest computed so far.
    """

    prefix: bytes
    suffix: bytes

    def apply(self, child_digest: bytes) -> bytes:
        """Fold this step over the running digest."""
        return keccak(self.prefix + child_digest + self.suffix)

    def size_bytes(self) -> int:
        """Serialized size, used for gas metering of proof verification."""
        return len(self.prefix) + len(self.suffix)


@dataclass(frozen=True)
class MembershipProof:
    """Proof that ``key`` maps to ``value`` under some Merkle root.

    ``leaf_prefix`` lets each structure keep its own leaf
    domain-separation; the leaf digest is
    ``keccak(leaf_prefix + key + value)``.
    """

    key: bytes
    value: bytes
    leaf_prefix: bytes
    steps: List[ProofStep] = field(default_factory=list)

    def leaf_digest(self) -> bytes:
        """Digest of the (key, value) leaf under this proof's domain."""
        return keccak(self.leaf_prefix + self.key + self.value)

    def computed_root(self) -> bytes:
        """Recompute the Merkle root implied by this proof."""
        digest = self.leaf_digest()
        for step in self.steps:
            digest = step.apply(digest)
        return digest

    def size_bytes(self) -> int:
        """Total serialized size (drives Move2 proof-verification gas)."""
        total = len(self.key) + len(self.value) + len(self.leaf_prefix)
        return total + sum(step.size_bytes() for step in self.steps)

    def __len__(self) -> int:
        return len(self.steps)


def verify_proof(proof: MembershipProof, trusted_root: Optional[bytes]) -> bool:
    """``VP(V ↦ m)``: does the proof reconstruct the trusted root?

    Returns ``False`` (never raises) on any mismatch, including a
    missing trusted root.
    """
    if trusted_root is None:
        return False
    return proof.computed_root() == trusted_root
