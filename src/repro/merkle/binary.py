"""Bitcoin-style binary Merkle tree over an ordered list of leaves.

Used to commit the transaction list of a block body to the
``transactions_root`` field of the block header.  Leaves are arbitrary
byte strings; an odd node at any level is promoted unchanged to the next
level (no Bitcoin-style duplication, which avoids the classic
CVE-2012-2459 ambiguity).

Proofs fit the common :class:`~repro.merkle.proof.MembershipProof`
interface: the leaf digest is ``keccak(b"\\x00" + payload)`` and each
internal node is ``keccak(b"\\x01" + left + right)``.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.crypto.hashing import keccak, merkle_hash_leaf
from repro.merkle.proof import MembershipProof, ProofStep

_LEAF_PREFIX = b"\x00"
_NODE_PREFIX = b"\x01"

EMPTY_ROOT = keccak(b"empty-binary-merkle")


class BinaryMerkleTree:
    """A static binary Merkle tree built from a sequence of leaves."""

    def __init__(self, leaves: Sequence[bytes]):
        self._leaves: List[bytes] = list(leaves)
        self._levels: List[List[bytes]] = []
        self._build()

    def _build(self) -> None:
        if not self._leaves:
            self._levels = []
            return
        level = [merkle_hash_leaf(leaf) for leaf in self._leaves]
        self._levels = [level]
        while len(level) > 1:
            parent: List[bytes] = []
            for i in range(0, len(level) - 1, 2):
                parent.append(keccak(_NODE_PREFIX, level[i], level[i + 1]))
            if len(level) % 2 == 1:
                parent.append(level[-1])  # promote the odd node
            self._levels.append(parent)
            level = parent

    @property
    def root(self) -> bytes:
        """Merkle root; a fixed sentinel digest for the empty tree."""
        if not self._levels:
            return EMPTY_ROOT
        return self._levels[-1][0]

    @property
    def root_hash(self) -> bytes:
        """Alias of :attr:`root`, matching the
        :class:`~repro.merkle.protocol.MerkleCommitment` protocol."""
        return self.root

    def snapshot(self) -> "BinaryMerkleTree":
        """O(1) frozen copy sharing the built levels (the tree is
        static after construction, so sharing is always safe)."""
        clone = BinaryMerkleTree.__new__(BinaryMerkleTree)
        clone._leaves = self._leaves
        clone._levels = self._levels
        return clone

    def __len__(self) -> int:
        return len(self._leaves)

    def prove(self, index: int) -> MembershipProof:
        """Build a ``{v} ↦ m`` proof for the leaf at ``index``."""
        if not 0 <= index < len(self._leaves):
            raise IndexError(f"leaf index {index} out of range")
        steps: List[ProofStep] = []
        position = index
        for level in self._levels[:-1]:
            is_right = position % 2 == 1
            sibling_index = position - 1 if is_right else position + 1
            if sibling_index < len(level):
                sibling = level[sibling_index]
                if is_right:
                    steps.append(ProofStep(prefix=_NODE_PREFIX + sibling, suffix=b""))
                else:
                    steps.append(ProofStep(prefix=_NODE_PREFIX, suffix=sibling))
            # else: odd node promoted — no step at this level
            position //= 2
        return MembershipProof(
            key=b"", value=self._leaves[index], leaf_prefix=_LEAF_PREFIX, steps=steps
        )
