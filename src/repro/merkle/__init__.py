"""Authenticated data structures (the paper's "Merkle-trees").

The paper (Section II) treats all commitment structures uniformly as
"Merkle-trees": Bitcoin uses a binary Merkle tree, Tendermint a modified
AVL tree (IAVL), Ethereum a hexary Merkle Patricia trie.  This package
implements all three, each producing proofs that satisfy the common
``{v} ↦ m`` interface in :mod:`repro.merkle.proof`: a proof carries the
leaf value and the sibling digests needed to recompute the root ``m``;
verification is logarithmic in tree size.
"""

from repro.merkle.binary import BinaryMerkleTree
from repro.merkle.iavl import IAVLTree
from repro.merkle.proof import MembershipProof, verify_proof
from repro.merkle.protocol import AuthenticatedTree, MerkleCommitment, TreeFactory
from repro.merkle.trie import MerklePatriciaTrie

__all__ = [
    "AuthenticatedTree",
    "BinaryMerkleTree",
    "IAVLTree",
    "MerkleCommitment",
    "MerklePatriciaTrie",
    "MembershipProof",
    "TreeFactory",
    "verify_proof",
]
