"""Ethereum-style hexary Merkle Patricia trie.

The Ethereum-flavoured chain commits its world state and per-contract
storage with this structure (paper Section II).  Keys are arbitrary byte
strings, decomposed into 4-bit nibbles; three node kinds exist:

* **leaf** — commits the *full* key and value:
  ``keccak(b"\\x02" + key + value)``.  Committing the full key (rather
  than only the remainder path, as Ethereum does) is sound and keeps the
  proof verifier shared with the other trees.
* **branch** — 16 child digest slots plus an optional value leaf for a
  key terminating at the branch:
  ``keccak(b"\\x03" + slot_0 .. slot_15 + value_slot)`` with 32 zero
  bytes for empty slots.
* **extension** — a shared nibble run:
  ``keccak(b"\\x04" + packed_nibbles + child_digest)``.

Nodes are immutable and structurally shared, so block-by-block root
recomputation touches only modified paths.  Proofs serialize into the
common :class:`~repro.merkle.proof.MembershipProof` prefix/suffix steps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple, Union

from repro.crypto.hashing import keccak
from repro.merkle.proof import MembershipProof, ProofStep

_LEAF_PREFIX = b"\x02"
_BRANCH_PREFIX = b"\x03"
_EXT_PREFIX = b"\x04"

_ZERO_SLOT = b"\x00" * 32

EMPTY_ROOT = keccak(b"empty-mpt")

Nibbles = Tuple[int, ...]


def _to_nibbles(key: bytes) -> Nibbles:
    out: List[int] = []
    for byte in key:
        out.append(byte >> 4)
        out.append(byte & 0x0F)
    return tuple(out)


def _pack(nibbles: Nibbles) -> bytes:
    return bytes(nibbles)


def _common_prefix(a: Nibbles, b: Nibbles) -> Nibbles:
    i = 0
    limit = min(len(a), len(b))
    while i < limit and a[i] == b[i]:
        i += 1
    return a[:i]


@dataclass(frozen=True)
class _Leaf:
    path: Nibbles  # key remainder below this point (routing only)
    key: bytes  # full key, committed in the digest
    value: bytes
    digest: bytes


def _leaf(path: Nibbles, key: bytes, value: bytes) -> _Leaf:
    return _Leaf(path=path, key=key, value=value, digest=keccak(_LEAF_PREFIX, key, value))


@dataclass(frozen=True)
class _Branch:
    children: Tuple[Optional["_TrieNode"], ...]  # 16 slots
    vleaf: Optional[_Leaf]  # key terminating exactly here
    digest: bytes


def _branch(children: Tuple[Optional["_TrieNode"], ...], vleaf: Optional[_Leaf]) -> _Branch:
    slots = b"".join(c.digest if c is not None else _ZERO_SLOT for c in children)
    vslot = vleaf.digest if vleaf is not None else _ZERO_SLOT
    return _Branch(children=children, vleaf=vleaf, digest=keccak(_BRANCH_PREFIX, slots, vslot))


@dataclass(frozen=True)
class _Ext:
    path: Nibbles  # non-empty shared run
    child: "_TrieNode"
    digest: bytes


def _ext(path: Nibbles, child: "_TrieNode") -> "_TrieNode":
    if not path:
        return child
    if isinstance(child, _Leaf):
        # Fold the run into the leaf's routing path instead of chaining.
        return _leaf(path + child.path, child.key, child.value)
    if isinstance(child, _Ext):
        return _Ext(
            path=path + child.path,
            child=child.child,
            digest=keccak(_EXT_PREFIX, _pack(path + child.path), child.child.digest),
        )
    return _Ext(path=path, child=child, digest=keccak(_EXT_PREFIX, _pack(path), child.digest))


_TrieNode = Union[_Leaf, _Branch, _Ext]


def _insert(node: Optional[_TrieNode], path: Nibbles, key: bytes, value: bytes) -> _TrieNode:
    if node is None:
        return _leaf(path, key, value)

    if isinstance(node, _Leaf):
        if node.path == path:
            return _leaf(path, key, value)  # overwrite same key
        prefix = _common_prefix(node.path, path)
        children: List[Optional[_TrieNode]] = [None] * 16
        vleaf: Optional[_Leaf] = None
        old_rem = node.path[len(prefix):]
        new_rem = path[len(prefix):]
        if old_rem:
            children[old_rem[0]] = _leaf(old_rem[1:], node.key, node.value)
        else:
            vleaf = _leaf((), node.key, node.value)
        if new_rem:
            children[new_rem[0]] = _leaf(new_rem[1:], key, value)
        else:
            vleaf = _leaf((), key, value)
        return _ext(prefix, _branch(tuple(children), vleaf))

    if isinstance(node, _Ext):
        prefix = _common_prefix(node.path, path)
        if len(prefix) == len(node.path):
            return _ext(node.path, _insert(node.child, path[len(prefix):], key, value))
        children = [None] * 16
        vleaf = None
        ext_rem = node.path[len(prefix):]
        children[ext_rem[0]] = _ext(ext_rem[1:], node.child)
        new_rem = path[len(prefix):]
        if new_rem:
            children[new_rem[0]] = _leaf(new_rem[1:], key, value)
        else:
            vleaf = _leaf((), key, value)
        return _ext(prefix, _branch(tuple(children), vleaf))

    # Branch
    if not path:
        return _branch(node.children, _leaf((), key, value))
    slot = path[0]
    updated = _insert(node.children[slot], path[1:], key, value)
    children = list(node.children)
    children[slot] = updated
    return _branch(tuple(children), node.vleaf)


def _collapse(node: _Branch) -> Optional[_TrieNode]:
    """Collapse a branch left with at most one entry after deletion."""
    live = [(i, c) for i, c in enumerate(node.children) if c is not None]
    if node.vleaf is not None and not live:
        return _leaf((), node.vleaf.key, node.vleaf.value)
    if node.vleaf is None and len(live) == 1:
        slot, child = live[0]
        return _ext((slot,), child)
    if node.vleaf is None and not live:
        return None
    return node


def _delete(node: Optional[_TrieNode], path: Nibbles) -> Tuple[Optional[_TrieNode], bool]:
    if node is None:
        return None, False

    if isinstance(node, _Leaf):
        if node.path == path:
            return None, True
        return node, False

    if isinstance(node, _Ext):
        if path[: len(node.path)] != node.path:
            return node, False
        new_child, removed = _delete(node.child, path[len(node.path):])
        if not removed:
            return node, False
        if new_child is None:
            return None, True
        return _ext(node.path, new_child), True

    # Branch
    if not path:
        if node.vleaf is None:
            return node, False
        return _collapse(_branch(node.children, None)), True
    slot = path[0]
    new_child, removed = _delete(node.children[slot], path[1:])
    if not removed:
        return node, False
    children = list(node.children)
    children[slot] = new_child
    return _collapse(_branch(tuple(children), node.vleaf)), True


class MerklePatriciaTrie:
    """Mutable facade over the persistent trie nodes."""

    #: Radix structure: the trie shape — and so the root — is fully
    #: determined by the key/value content, whatever the write order.
    history_independent = True

    def __init__(self) -> None:
        self._root: Optional[_TrieNode] = None

    def snapshot(self) -> "MerklePatriciaTrie":
        """O(1) frozen copy sharing the immutable node structure.

        The copy never changes as this trie evolves; writing to the
        copy forks it (persistent-structure semantics).
        """
        clone = MerklePatriciaTrie()
        clone._root = self._root
        return clone

    @property
    def root_hash(self) -> bytes:
        if self._root is None:
            return EMPTY_ROOT
        return self._root.digest

    def set(self, key: bytes, value: bytes) -> None:
        """Insert or overwrite ``key``."""
        self._root = _insert(self._root, _to_nibbles(key), key, value)

    def get(self, key: bytes) -> Optional[bytes]:
        """Return the value for ``key`` or ``None``."""
        node = self._root
        path = _to_nibbles(key)
        while node is not None:
            if isinstance(node, _Leaf):
                return node.value if node.path == path else None
            if isinstance(node, _Ext):
                if path[: len(node.path)] != node.path:
                    return None
                node, path = node.child, path[len(node.path):]
                continue
            if not path:
                return node.vleaf.value if node.vleaf is not None else None
            node, path = node.children[path[0]], path[1:]
        return None

    def delete(self, key: bytes) -> bool:
        """Remove ``key``; returns whether it was present."""
        self._root, removed = _delete(self._root, _to_nibbles(key))
        return removed

    def __contains__(self, key: bytes) -> bool:
        return self.get(key) is not None

    def items(self) -> Iterator[Tuple[bytes, bytes]]:
        """Yield all (key, value) pairs (leaf order)."""
        def walk(node: Optional[_TrieNode]) -> Iterator[Tuple[bytes, bytes]]:
            if node is None:
                return
            if isinstance(node, _Leaf):
                yield node.key, node.value
                return
            if isinstance(node, _Ext):
                yield from walk(node.child)
                return
            if node.vleaf is not None:
                yield node.vleaf.key, node.vleaf.value
            for child in node.children:
                yield from walk(child)

        yield from walk(self._root)

    def __len__(self) -> int:
        return sum(1 for _ in self.items())

    def prove(self, key: bytes) -> MembershipProof:
        """Build a ``{v} ↦ m`` proof; raises :class:`KeyError` if absent."""
        steps: List[ProofStep] = []
        node = self._root
        path = _to_nibbles(key)
        value: Optional[bytes] = None
        while node is not None:
            if isinstance(node, _Leaf):
                if node.path != path:
                    break
                value = node.value
                break
            if isinstance(node, _Ext):
                if path[: len(node.path)] != node.path:
                    break
                steps.append(ProofStep(prefix=_EXT_PREFIX + _pack(node.path), suffix=b""))
                path = path[len(node.path):]
                node = node.child
                continue
            # Branch
            slots = [c.digest if c is not None else _ZERO_SLOT for c in node.children]
            vslot = node.vleaf.digest if node.vleaf is not None else _ZERO_SLOT
            if not path:
                if node.vleaf is None:
                    break
                steps.append(
                    ProofStep(prefix=_BRANCH_PREFIX + b"".join(slots), suffix=b"")
                )
                value = node.vleaf.value
                break
            slot = path[0]
            prefix = _BRANCH_PREFIX + b"".join(slots[:slot])
            suffix = b"".join(slots[slot + 1:]) + vslot
            steps.append(ProofStep(prefix=prefix, suffix=suffix))
            node = node.children[slot]
            path = path[1:]
        if value is None:
            raise KeyError(key.hex())
        steps.reverse()
        return MembershipProof(key=key, value=value, leaf_prefix=_LEAF_PREFIX, steps=steps)
