"""High-level, gas-metered contract runtime.

The paper's applications are written in (extended) Solidity and compiled
to the EVM.  Here they are written as Python classes against this
runtime, which plays the role of Solidity + EVM: typed storage slots
route every read/write through the same gas schedule as the bytecode VM,
``require`` reverts, methods are dispatched through an ABI-like boundary
with ``msg.sender``/``msg.value`` semantics, contract creation charges
CREATE + code-deposit gas, and the Move protocol's lock field ``L_c``
is enforced on every call (writes to a moved-away contract abort).
"""

from repro.runtime.context import BlockEnv, Msg, TxContext
from repro.runtime.contract import Contract, MapSlot, Slot, external, payable, view
from repro.runtime.registry import code_for, lookup_code, register_contract
from repro.runtime.runtime import Runtime

__all__ = [
    "Contract",
    "Slot",
    "MapSlot",
    "external",
    "payable",
    "view",
    "Runtime",
    "TxContext",
    "Msg",
    "BlockEnv",
    "register_contract",
    "lookup_code",
    "code_for",
]
