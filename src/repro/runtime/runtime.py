"""The contract runtime: deployment, dispatch, lock enforcement.

This is the high-level analogue of the modified EVM the paper runs:
every entry point charges the gas schedule, and — the Move protocol's
key invariant — **any call that could mutate a contract whose ``L_c``
points to another blockchain aborts** (:class:`ContractLocked`), while
``@view`` methods remain callable because reads of moved-away state are
explicitly allowed (Section III-B).
"""

from __future__ import annotations

from typing import Any, Optional, Tuple, Type

from repro.crypto.keys import Address, contract_address, create2_address
from repro.errors import ContractLocked, ReadOnlyReplicaError, Revert
from repro.runtime.context import BlockEnv, Msg, TxContext
from repro.runtime.contract import Contract
from repro.runtime.registry import code_for, lookup_code
from repro.statedb.state import WorldState
from repro.vm.gas import GasMeter, GasSchedule

MAX_CALL_DEPTH = 64


class Runtime:
    """Binds a world state to a gas schedule and dispatches calls."""

    def __init__(self, state: WorldState, schedule: GasSchedule):
        self.state = state
        self.schedule = schedule

    # ------------------------------------------------------------------
    # Context plumbing
    # ------------------------------------------------------------------

    def make_context(
        self,
        origin: Address,
        env: BlockEnv,
        meter: Optional[GasMeter] = None,
        category: str = "execution",
    ) -> TxContext:
        """Create a transaction context bound to this runtime."""
        ctx = TxContext(
            state=self.state,
            env=env,
            meter=meter if meter is not None else GasMeter(schedule=self.schedule),
            origin=origin,
            category=category,
        )
        ctx.runtime = self  # type: ignore[attr-defined]
        return ctx

    # ------------------------------------------------------------------
    # Deployment
    # ------------------------------------------------------------------

    def deploy(
        self,
        ctx: TxContext,
        cls: Type[Contract],
        args: Tuple[Any, ...] = (),
        sender: Optional[Address] = None,
        salt: Optional[int] = None,
        value: int = 0,
    ) -> Address:
        """Create a contract; returns its (chain-id-qualified) address.

        ``salt=None`` derives a CREATE-style address from the creator's
        nonce; an integer salt derives a CREATE2-style address — the
        mechanism SCoin's origin attestation builds on (Section V-A).
        """
        sender = sender if sender is not None else ctx.msg.sender
        code = code_for(cls)
        ctx.charge(self.schedule.create, "create")
        # Ethereum-flavoured chains charge the per-byte deposit on every
        # creation, even of code already on-chain (paper Section VIII:
        # "every recreated contract pays a constant gas based on the
        # size of the moved code").  The schedule's ``code_deposit_dedup``
        # flag enables the optimization the paper points out; Burrow's
        # schedule sets the per-byte cost to 0 outright.
        if not (self.schedule.code_deposit_dedup and self.state.has_code(cls.CODE_HASH)):
            ctx.charge(self.schedule.code_deposit(len(code)), "code_deposit")
        if salt is None:
            # The creator's account nonce doubles as its creation
            # counter (for contract creators the side account record
            # serves only this purpose).
            nonce = self.state.bump_nonce(sender)
            address = contract_address(ctx.env.chain_id, sender, nonce)
        else:
            address = create2_address(ctx.env.chain_id, sender, salt, cls.CODE_HASH)
        self.state.create_contract(address, cls.CODE_HASH, code)
        if value:
            self._transfer_value(sender, address, value)
        instance = cls(ctx, address)
        ctx.push_msg(Msg(sender=sender, value=value))
        try:
            init = getattr(instance, "init", None)
            if callable(init):
                init(*args)
        finally:
            ctx.pop_msg()
        return address

    # ------------------------------------------------------------------
    # Calls
    # ------------------------------------------------------------------

    def call(
        self,
        ctx: TxContext,
        target: Address,
        method: str,
        args: Tuple[Any, ...] = (),
        sender: Optional[Address] = None,
        value: int = 0,
    ) -> Any:
        """Dispatch ``method`` on the contract at ``target``.

        Enforces: external-only dispatch, payable checks, call-depth
        limit, and the Move lock — a non-view call to a contract whose
        ``L_c`` names another chain aborts with :class:`ContractLocked`.
        """
        if ctx.call_depth >= MAX_CALL_DEPTH:
            raise Revert("max call depth exceeded")
        sender = sender if sender is not None else ctx.msg.sender
        ctx.charge(self.schedule.call)
        record = self.state.contract(target)
        if record is None:
            raise Revert(f"no contract at {target}")
        cls = lookup_code(record.code_hash)
        # Specialized dispatch: registration precomputes
        # ``method -> (fn, is_view, is_payable)`` so the hot call path
        # skips the getattr + decorator-flag probes.  Own-class lookup
        # only — a class not (re-)registered takes the generic path.
        dispatch = cls.__dict__.get("_RT_DISPATCH")
        if dispatch is not None:
            entry = dispatch.get(method)
            if entry is None:
                raise Revert(f"{cls.__name__} has no external method {method!r}")
            fn, is_view, is_payable = entry
        else:
            fn = getattr(cls, method, None)
            if fn is None or not getattr(fn, "_is_external", False):
                raise Revert(f"{cls.__name__} has no external method {method!r}")
            is_view = getattr(fn, "_is_view", False)
            is_payable = getattr(fn, "_is_payable", False)
        if self.state.is_locked(target) and not is_view:
            if self.state.is_mirror(target):
                raise ReadOnlyReplicaError(
                    f"contract {target} is a read-only replica of "
                    f"chain {record.location}"
                )
            raise ContractLocked(
                f"contract {target} moved to chain {record.location}"
            )
        if value and not is_payable:
            raise Revert(f"{method!r} is not payable")
        if value:
            self._transfer_value(sender, target, value)
        instance = cls(ctx, target)
        ctx.push_msg(Msg(sender=sender, value=value))
        try:
            return fn(instance, *args)
        finally:
            ctx.pop_msg()

    def view(
        self,
        target: Address,
        method: str,
        args: Tuple[Any, ...] = (),
        env: Optional[BlockEnv] = None,
        sender: Optional[Address] = None,
    ) -> Any:
        """Read-only query from outside a transaction (unmetered)."""
        env = env if env is not None else BlockEnv(self.state.chain_id, 0, 0.0)
        sender = sender if sender is not None else Address(b"\x00" * 20)
        ctx = self.make_context(sender, env)
        record = self.state.require_contract(target)
        cls = lookup_code(record.code_hash)
        fn = getattr(cls, method)
        instance = cls(ctx, target)
        ctx.push_msg(Msg(sender=sender, value=0))
        try:
            return fn(instance, *args)
        finally:
            ctx.pop_msg()

    def bind(self, ctx: TxContext, target: Address) -> Contract:
        """Instantiate a typed view over a deployed contract."""
        record = self.state.require_contract(target)
        cls = lookup_code(record.code_hash)
        return cls(ctx, target)

    # ------------------------------------------------------------------

    def _transfer_value(self, sender: Address, to: Address, value: int) -> None:
        if self.state.balance_of(sender) < value:
            raise Revert(f"insufficient balance for value transfer from {sender}")
        self.state.sub_balance(sender, value)
        self.state.add_balance(to, value)
