"""Contract base class, typed storage slots and method decorators.

A contract class declares storage declaratively::

    @register_contract
    class Counter(Contract):
        count = Slot(int)
        owners = MapSlot(Address, int)

        @external
        def bump(self) -> int:
            require(self.msg.sender == self.owner, "not owner")
            self.count += 1
            return self.count

Slot reads charge ``SLOAD`` gas, writes charge ``SSTORE`` (set / update
/ clear discriminated on the previous value), exactly like the bytecode
VM — the point where the high-level runtime stays gas-faithful to the
EVM model the paper measures.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Type, TypeVar

from repro.crypto.hashing import keccak
from repro.crypto.keys import Address
from repro.errors import Revert
from repro.runtime.context import BlockEnv, Msg, TxContext

F = TypeVar("F", bound=Callable)


def external(fn: F) -> F:
    """Mark a method callable from transactions and other contracts."""
    fn._is_external = True  # type: ignore[attr-defined]
    return fn


def payable(fn: F) -> F:
    """Allow the method to receive value (``msg.value > 0``)."""
    fn._is_external = True  # type: ignore[attr-defined]
    fn._is_payable = True  # type: ignore[attr-defined]
    return fn


def view(fn: F) -> F:
    """Mark a read-only method — callable even on a locked (moved-away)
    contract, since reads of moved state remain legal (Section III-B)."""
    fn._is_external = True  # type: ignore[attr-defined]
    fn._is_view = True  # type: ignore[attr-defined]
    return fn


def encode_value(value: Any) -> bytes:
    """Canonical storage encoding for supported slot types."""
    if isinstance(value, bool):
        return b"\x01" if value else b""
    if isinstance(value, int):
        if value < 0:
            raise ValueError("storage integers are non-negative")
        return value.to_bytes(32, "big") if value else b""
    if isinstance(value, Address):
        return value.raw
    if isinstance(value, bytes):
        return value
    if value is None:
        return b""
    raise TypeError(f"unsupported storage type {type(value).__name__}")


def decode_value(raw: bytes, kind: Type) -> Any:
    """Inverse of :func:`encode_value` for a declared slot type."""
    if kind is bool:
        return bool(raw)
    if kind is int:
        return int.from_bytes(raw, "big") if raw else 0
    if kind is Address:
        return Address(raw) if raw else None
    if kind is bytes:
        return raw
    raise TypeError(f"unsupported slot type {kind.__name__}")


def encode_key(value: Any) -> bytes:
    """Canonical encoding of a map key."""
    if isinstance(value, Address):
        return value.raw
    if isinstance(value, bool):
        return b"\x01" if value else b"\x00"
    if isinstance(value, int):
        return value.to_bytes(32, "big", signed=False)
    if isinstance(value, (bytes, bytearray)):
        return bytes(value)
    if isinstance(value, str):
        return value.encode()
    raise TypeError(f"unsupported map key type {type(value).__name__}")


class Slot:
    """A scalar storage slot; the key is derived from the field name."""

    def __init__(self, kind: Type = int, default: Any = None):
        self.kind = kind
        self.default = default
        self.key = b""

    def __set_name__(self, owner: Type, name: str) -> None:
        self.name = name
        self.key = keccak(b"slot", name.encode())

    def __get__(self, obj: Optional["Contract"], objtype: Type = None) -> Any:
        if obj is None:
            return self
        raw = obj._storage_read(self.key)
        if not raw and self.default is not None:
            return self.default
        return decode_value(raw, self.kind)

    def __set__(self, obj: "Contract", value: Any) -> None:
        obj._storage_write(self.key, encode_value(value))


class _MapAccessor:
    """Live view over one contract's map slot."""

    def __init__(self, contract: "Contract", slot: "MapSlot"):
        self._contract = contract
        self._slot = slot
        self._value_kind = slot.value_kind

    def _key(self, key: Any) -> bytes:
        return self._slot.derived_key(key)

    def __getitem__(self, key: Any) -> Any:
        return decode_value(self._contract._storage_read(self._key(key)), self._value_kind)

    def __setitem__(self, key: Any, value: Any) -> None:
        self._contract._storage_write(self._key(key), encode_value(value))

    def __delitem__(self, key: Any) -> None:
        self._contract._storage_write(self._key(key), b"")

    def __contains__(self, key: Any) -> bool:
        return bool(self._contract._storage_read(self._key(key)))


class MapSlot:
    """A mapping slot (``mapping(K => V)`` in Solidity terms).

    Derived slot keys (``keccak(base, encode_key(k))``) are memoized on
    the descriptor: the base key is fixed at class definition, so the
    derivation is pure and one hot map key (SCoin allowance owners, a
    kitty id) would otherwise re-hash on every single access.
    """

    #: derived-key memo bound (entries are 32-byte values keyed by small
    #: primitives; 4096 keeps the worst case well under a megabyte)
    _CACHE_LIMIT = 4096

    def __init__(self, key_kind: Type, value_kind: Type):
        self.key_kind = key_kind
        self.value_kind = value_kind
        self.base = b""
        self._derived: dict = {}

    def __set_name__(self, owner: Type, name: str) -> None:
        self.name = name
        self.base = keccak(b"map", name.encode())
        self._derived.clear()  # base changed: old derivations are stale

    def derived_key(self, key: Any) -> bytes:
        """The keccak-derived storage key for one mapping entry,
        memoized per ``(type, key)`` — typed so bool/int stay apart
        (``True == 1`` would otherwise alias two distinct encoded
        keys).  The memo is bounded and cleared on re-registration."""
        try:
            memo_key = (key.__class__, key)
            cached = self._derived.get(memo_key)
            if cached is not None:
                return cached
            derived = keccak(self.base, encode_key(key))
            if len(self._derived) >= self._CACHE_LIMIT:
                self._derived.clear()
            self._derived[memo_key] = derived
            return derived
        except TypeError:  # unhashable key type: derive uncached
            return keccak(self.base, encode_key(key))

    def __get__(self, obj: Optional["Contract"], objtype: Type = None) -> Any:
        if obj is None:
            return self
        return _MapAccessor(obj, self)

    def __set__(self, obj: "Contract", value: Any) -> None:
        raise AttributeError("assign through map[key] = value, not the map itself")


class Contract:
    """Base class for all contracts.

    Instances are ephemeral *views*: the runtime binds
    ``(context, address)`` for the duration of one call.  Persistent
    data lives exclusively in declared slots.
    """

    CODE: bytes = b""
    CODE_HASH: bytes = b""

    def __init__(self, ctx: TxContext, address: Address):
        self._ctx = ctx
        self.address = address

    # -- environment accessors ----------------------------------------

    @property
    def msg(self) -> Msg:
        return self._ctx.msg

    @property
    def env(self) -> BlockEnv:
        return self._ctx.env

    @property
    def chain_id(self) -> int:
        return self._ctx.env.chain_id

    @property
    def now(self) -> float:
        """Block timestamp (Solidity's ``now``)."""
        return self._ctx.env.timestamp

    @property
    def balance(self) -> int:
        return self._ctx.state.balance_of(self.address)

    @property
    def location(self) -> int:
        """The Move protocol's ``L_c`` for this contract."""
        return self._ctx.state.require_contract(self.address).location

    @property
    def move_nonce(self) -> int:
        return self._ctx.state.require_contract(self.address).move_nonce

    # -- metered storage ------------------------------------------------

    def _storage_read(self, key: bytes) -> bytes:
        self._ctx.charge(self._ctx.meter.schedule.sload)
        return self._ctx.state.storage_get(self.address, key)

    def _storage_write(self, key: bytes, value: bytes) -> None:
        schedule = self._ctx.meter.schedule
        current = self._ctx.state.storage_get(self.address, key)
        if not current and value:
            self._ctx.charge(schedule.sstore_set)
        elif current and not value:
            self._ctx.charge(schedule.sstore_clear)
        else:
            self._ctx.charge(schedule.sstore_update)
        self._ctx.state.storage_set(self.address, key, value)

    # -- contract-to-contract interaction --------------------------------

    def call(self, target: Address, method: str, *args: Any, value: int = 0) -> Any:
        """Call another contract; ``msg.sender`` becomes this contract."""
        from repro.runtime.runtime import Runtime  # local import, no cycle at module load

        runtime: Runtime = self._ctx.runtime  # type: ignore[attr-defined]
        return runtime.call(
            self._ctx, target, method, args, sender=self.address, value=value
        )

    def create(
        self, cls: Type["Contract"], *args: Any, salt: Optional[int] = None, value: int = 0
    ) -> Address:
        """Create a child contract (CREATE/CREATE2 by salt presence)."""
        from repro.runtime.runtime import Runtime

        runtime: Runtime = self._ctx.runtime  # type: ignore[attr-defined]
        return runtime.deploy(
            self._ctx, cls, args, sender=self.address, salt=salt, value=value
        )

    def transfer(self, to: Address, amount: int) -> None:
        """Send native currency from this contract's balance."""
        if self._ctx.state.balance_of(self.address) < amount:
            raise Revert("insufficient contract balance")
        self._ctx.state.sub_balance(self.address, amount)
        self._ctx.state.add_balance(to, amount)

    def emit(self, name: str, **fields: Any) -> None:
        """Emit an event (charged at LOG cost)."""
        size = sum(len(str(v)) for v in fields.values())
        self._ctx.charge(self._ctx.meter.schedule.log(size))
        self._ctx.emit(name, **fields)

    def verify_remote_state(self, proof: Any) -> bool:
        """Light-client builtin: verify a
        :class:`~repro.core.proofs.RemoteStateProof` against the
        executing node's confirmed headers of the proof's chain.

        This is the "more generic method ... using Merkle proofs"
        Section V-A alludes to: contract logic can attest arbitrary
        remote storage entries.  Charges proof-verification gas.
        Returns False (never raises) on any mismatch; reverts only if
        the node has no light client (standalone runtime use).
        """
        light_client = getattr(self._ctx, "light_client", None)
        if light_client is None:
            raise Revert("no light client available in this execution context")
        self._ctx.charge(
            self._ctx.meter.schedule.proof_verification(proof.size_bytes())
        )
        return proof.verify(light_client)

    def op_move(self, target_chain: int) -> None:
        """Execute OP_MOVE from inside contract code: assign this
        contract's own ``L_c`` and bump its move nonce.

        This is how the currency relay (paper Fig. 3) locks the relay
        contract "on creation" — the contract moves *itself* without a
        separate Move1 transaction.  The ``moveTo`` guard is *not* run:
        the contract is the one deciding to move.
        """
        if target_chain == self.chain_id:
            raise Revert("OP_MOVE target is the current chain")
        self._ctx.charge(self._ctx.meter.schedule.move_op)
        self._ctx.state.set_location(self.address, target_chain, height=self.env.height)
        self._ctx.state.bump_move_nonce(self.address)

    # -- Move protocol hooks (paper Listing 1) ---------------------------

    def move_to(self, target_chain: int) -> None:
        """Custom guard run by Move1 before ``L_c`` is assigned.

        Override to restrict who may move the contract and when; raise
        via ``require(...)`` to refuse the move.  Default: anyone who
        owns nothing special may move nothing — subclasses opt in by
        overriding (a contract that does not override cannot move).
        """
        raise Revert(f"{type(self).__name__} does not implement moveTo")

    def move_finish(self) -> None:
        """Custom hook run by Move2 after state recreation (no-op)."""


def require(condition: Any, message: str = "requirement failed") -> None:
    """Solidity's ``require``: revert the transaction unless truthy."""
    if not condition:
        raise Revert(message)
