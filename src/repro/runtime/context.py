"""Execution context threaded through contract calls."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.crypto.keys import Address
from repro.statedb.state import WorldState
from repro.vm.gas import GasMeter


@dataclass(frozen=True)
class BlockEnv:
    """Block-level environment visible to contracts."""

    chain_id: int
    height: int
    timestamp: float


@dataclass(frozen=True)
class Msg:
    """The Solidity ``msg`` object: who calls, with how much value."""

    sender: Address
    value: int


class TxContext:
    """Per-transaction execution context.

    Carries the world state, gas meter, block environment and the call
    stack of :class:`Msg` frames (one per nested contract call).  The
    ``category`` string tags every gas charge, letting the experiment
    harness split costs per phase (Fig. 9).
    """

    def __init__(
        self,
        state: WorldState,
        env: BlockEnv,
        meter: GasMeter,
        origin: Address,
        category: str = "execution",
    ):
        self.state = state
        self.env = env
        self.meter = meter
        self.origin = origin
        self.category = category
        #: the executing node's light client (set by the chain's
        #: executor); lets contracts verify remote-chain state through
        #: the :meth:`~repro.runtime.contract.Contract.verify_remote_state`
        #: builtin.  None in standalone runtime use.
        self.light_client = None
        self._msg_stack: List[Msg] = []
        self.events: List[Tuple[str, Dict[str, Any]]] = []
        self.call_depth = 0

    @property
    def msg(self) -> Msg:
        if not self._msg_stack:
            raise RuntimeError("no active call frame")
        return self._msg_stack[-1]

    def push_msg(self, msg: Msg) -> None:
        """Enter a call frame (sets msg.sender/value for the callee)."""
        self._msg_stack.append(msg)
        self.call_depth += 1

    def pop_msg(self) -> None:
        """Leave the current call frame."""
        self._msg_stack.pop()
        self.call_depth -= 1

    def charge(self, amount: int, category: Optional[str] = None) -> None:
        """Charge gas under this context's (or the given) category."""
        self.meter.charge(amount, category or self.category)

    def emit(self, name: str, **fields: Any) -> None:
        """Record a contract event (charged by the caller)."""
        self.events.append((name, fields))
