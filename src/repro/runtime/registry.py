"""Contract code registry.

A contract's "code" is the source text of its Python class — a
deterministic byte string standing in for compiled EVM bytecode.  Its
keccak digest is the ``code_hash`` committed in the contract's account
leaf; Move2 recomputes the digest from the code carried in the proof
bundle, so a tampered class cannot impersonate the original.

The registry maps ``code_hash -> class`` so any chain (the execution
analogue of "same virtual machine", assumption (b) of Section III-A)
can instantiate and run contracts recreated by a Move2.
"""

from __future__ import annotations

import inspect
from typing import Dict, Type

from repro.crypto.hashing import keccak
from repro.errors import CodeNotFound

_REGISTRY: Dict[bytes, Type] = {}


def _source_bytes(cls: Type) -> bytes:
    try:
        return inspect.getsource(cls).encode()
    except (OSError, TypeError):
        # Dynamically created classes (REPL, exec): fall back to a
        # stable identity string.  Still deterministic per definition.
        return f"{cls.__module__}.{cls.__qualname__}".encode()


def _build_dispatch(cls: Type) -> Dict[str, tuple]:
    """Specialize external-method dispatch at registration time.

    ``Runtime.call`` otherwise pays a ``getattr`` plus three decorator
    flag probes per call; the table precomputes
    ``method -> (fn, is_view, is_payable)`` once.  Rebuilding it on
    every (re-)registration is what invalidates stale entries when a
    contract class is redefined and redeployed.
    """
    table: Dict[str, tuple] = {}
    for name in dir(cls):
        if name.startswith("_"):
            continue
        fn = getattr(cls, name, None)
        if callable(fn) and getattr(fn, "_is_external", False):
            table[name] = (
                fn,
                getattr(fn, "_is_view", False),
                getattr(fn, "_is_payable", False),
            )
    return table


def register_contract(cls: Type) -> Type:
    """Class decorator: compute CODE/CODE_HASH and register the class."""
    code = _source_bytes(cls)
    cls.CODE = code
    cls.CODE_HASH = keccak(code)
    cls._RT_DISPATCH = _build_dispatch(cls)
    _REGISTRY[cls.CODE_HASH] = cls
    return cls


def lookup_code(code_hash: bytes) -> Type:
    """Resolve a code hash to its contract class."""
    cls = _REGISTRY.get(code_hash)
    if cls is None:
        raise CodeNotFound(f"unknown code hash {code_hash.hex()[:16]}…")
    return cls


def knows_code(code_hash: bytes) -> bool:
    """True when this process's registry can instantiate the class."""
    return code_hash in _REGISTRY


def code_for(cls: Type) -> bytes:
    """The registered code bytes of a contract class.

    Checks the class's *own* attributes — the ``Contract`` base defines
    empty placeholders, so an unregistered subclass must not silently
    deploy with empty code.
    """
    if "CODE" not in cls.__dict__:
        raise CodeNotFound(f"{cls.__name__} is not @register_contract-ed")
    return cls.CODE
