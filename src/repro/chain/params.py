"""Per-chain configuration.

The two parameter sets below mirror Section VI of the paper:
Tendermint configured to wait five seconds between blocks, Ethereum
fifteen; ``p`` (Section IV-A) set to two blocks for Burrow — because
Burrow saves the state of block *n* only in block *n+1*, clients must
wait two blocks anyway — and six blocks for Ethereum.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.merkle.iavl import IAVLTree
from repro.merkle.protocol import TreeFactory
from repro.merkle.trie import MerklePatriciaTrie
from repro.vm.gas import BURROW_SCHEDULE, ETHEREUM_SCHEDULE, GasSchedule


@dataclass(frozen=True)
class ChainParams:
    """Static configuration of one blockchain."""

    chain_id: int
    name: str
    flavor: str  # "burrow" | "ethereum"
    block_interval: float  # seconds between consecutive blocks
    confirmation_depth: int  # p: blocks behind head before accepted by peers
    gas_schedule: GasSchedule
    tree_factory: TreeFactory
    max_block_txs: int = 500
    #: Tendermint/Burrow quirk: the app state root of block n is carried
    #: by header n+1, so proofs about block n need header n+1.
    state_root_lag: int = 0
    #: validators (Tendermint) or miners (PoW) per chain
    validator_count: int = 10
    #: native-currency units charged per unit of gas (0 = free, the
    #: default for experiments that measure gas itself).  Fees are what
    #: make congestion economically visible — §IV-B: "as shards get
    #: congested and fees increase, users are tempted to move their
    #: contracts to underused shards".
    gas_price: int = 0
    #: block-execution worker count.  0 (default) keeps the classic
    #: serial transaction loop; any value ≥ 1 routes blocks through the
    #: optimistic parallel pipeline (:mod:`repro.parallel`) with that
    #: many speculation threads — 1 is the pipeline's serial baseline.
    #: Results are byte-identical either way (see docs/PERFORMANCE.md).
    executor_workers: int = 0
    #: speculation backend for the parallel pipeline: ``thread`` (the
    #: default) speculates on a thread pool against shared state;
    #: ``process`` ships waves to worker processes as coverage
    #: snapshots for real multi-core wall-clock (docs/PERFORMANCE.md).
    #: Ignored while ``executor_workers`` is 0.
    executor_backend: str = "thread"
    #: how many recent blocks keep their post-state root and account
    #: tree snapshot for serving historical proofs.  Must comfortably
    #: exceed every peer's ``state_root_lag + confirmation_depth`` (the
    #: light-client horizon) plus any GC age gate, so pending Move2
    #: proofs are never orphaned; beyond that, retaining roots forever
    #: just leaks memory on long-running chains.  0 disables pruning.
    snapshot_retention: int = 256

    def __post_init__(self) -> None:
        """Reject impossible configurations at construction time.

        Every check here used to surface only deep inside
        ``produce_block`` (a zero interval looping the timer driver, a
        negative ``p`` making proofs "ready" before inclusion); failing
        fast with the field name and a fix keeps the blast radius at the
        call site.
        """
        if self.chain_id < 0:
            raise ConfigError(
                f"chain_id must be non-negative, got {self.chain_id}"
            )
        if not self.block_interval > 0:
            raise ConfigError(
                f"block_interval must be a positive number of seconds, got "
                f"{self.block_interval!r} — a non-positive interval would make "
                "the block timer fire at or before the current instant forever"
            )
        if self.confirmation_depth < 0:
            raise ConfigError(
                f"confirmation_depth (p) must be >= 0, got {self.confirmation_depth} "
                "— a negative p would declare proofs ready before inclusion"
            )
        if self.state_root_lag < 0:
            raise ConfigError(
                f"state_root_lag must be >= 0, got {self.state_root_lag}"
            )
        if self.max_block_txs < 1:
            raise ConfigError(
                f"max_block_txs must be >= 1, got {self.max_block_txs} — "
                "blocks that can hold no transactions never drain the mempool"
            )
        if self.validator_count < 1:
            raise ConfigError(
                f"validator_count must be >= 1, got {self.validator_count}"
            )
        if self.gas_price < 0:
            raise ConfigError(f"gas_price must be >= 0, got {self.gas_price}")
        if self.executor_workers < 0:
            raise ConfigError(
                f"executor_workers must be >= 0, got {self.executor_workers} — "
                "use 0 for the serial loop, or >= 1 for the parallel pipeline"
            )
        if self.executor_backend not in ("thread", "process"):
            raise ConfigError(
                f"executor_backend must be 'thread' or 'process', got "
                f"{self.executor_backend!r} — 'thread' speculates against "
                "shared state, 'process' ships waves to worker processes"
            )
        if self.snapshot_retention < 0:
            raise ConfigError(
                f"snapshot_retention must be >= 0 (0 disables pruning), got "
                f"{self.snapshot_retention}"
            )
        horizon = self.state_root_lag + self.confirmation_depth
        if 0 < self.snapshot_retention <= horizon:
            raise ConfigError(
                f"snapshot_retention={self.snapshot_retention} is inside the "
                f"light-client horizon (state_root_lag + confirmation_depth = "
                f"{horizon}) — still-provable Move1 snapshots would be pruned; "
                f"use at least {horizon + 1}, or 0 to disable pruning"
            )

    def min_proof_height(self, inclusion_height: int) -> int:
        """First own-chain height at which a tx included at
        ``inclusion_height`` is provable (root published, lag applied)."""
        return inclusion_height + self.state_root_lag

    def confirmed_height(self, head_height: int) -> int:
        """Highest height peers accept proofs about, given the head."""
        return head_height - self.confirmation_depth


def burrow_params(chain_id: int, name: str = "", **overrides) -> ChainParams:
    """A Burrow/Tendermint-flavoured chain (5 s blocks, p=2, IAVL).

    Any :class:`ChainParams` field can be overridden by keyword.
    """
    # The paper sets "p = 2 blocks" for Burrow because the state of
    # block n is saved only in block n+1: one block of root-publication
    # lag plus one block of depth equals the paper's two-block wait
    # ("clients have no option other to wait for two blocks").
    fields = dict(
        chain_id=chain_id,
        name=name or f"burrow-{chain_id}",
        flavor="burrow",
        block_interval=5.0,
        confirmation_depth=1,
        gas_schedule=BURROW_SCHEDULE,
        tree_factory=IAVLTree,
        state_root_lag=1,
    )
    fields.update(overrides)
    return ChainParams(**fields)


def ethereum_params(chain_id: int, name: str = "", **overrides) -> ChainParams:
    """An Ethereum-flavoured chain (15 s blocks, p=6, Patricia trie).

    Any :class:`ChainParams` field can be overridden by keyword.
    """
    fields = dict(
        chain_id=chain_id,
        name=name or f"ethereum-{chain_id}",
        flavor="ethereum",
        block_interval=15.0,
        confirmation_depth=6,
        gas_schedule=ETHEREUM_SCHEDULE,
        tree_factory=MerklePatriciaTrie,
        state_root_lag=0,
    )
    fields.update(overrides)
    return ChainParams(**fields)


#: Default instances used by examples and tests.
BURROW_PARAMS = burrow_params(chain_id=1)
ETHEREUM_PARAMS = ethereum_params(chain_id=2)
