"""On-chain execution of raw bytecode contracts.

The high-level runtime (:mod:`repro.runtime`) is how the paper's
applications are written, but assumption (b) of the Move protocol —
"use the same execution environment" — is about the *virtual machine*.
This module closes the loop: raw bytecode produced by
:func:`repro.vm.assembler.assemble` can be deployed and called on a
chain, executing against the same journaled world state through
:class:`StateMachineContext`, with ``OP_MOVE`` writing the same ``L_c``
field the high-level Move1 path writes.  A bytecode contract therefore
moves across chains exactly like a Python-class contract: its own code
executes ``OP_MOVE`` (there is no ``moveTo`` hook at this level), any
client ships the Move2 proof, and the target recreates code + storage.

Storage mapping: the VM's 256-bit keys/values are stored as 32-byte
big-endian keys with non-zero 32-byte values (zero stores delete the
slot), so Merkle commitment and Move2 recreation are identical to the
high-level layer's.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.crypto.keys import Address
from repro.errors import Revert
from repro.runtime.context import BlockEnv
from repro.statedb.state import WorldState
from repro.vm.gas import GasMeter
from repro.vm.machine import ExecutionResult, Machine


def address_to_word(address: Address) -> int:
    """A 20-byte address as the VM's 256-bit word."""
    return int.from_bytes(address.raw, "big")


def word_to_key(key: int) -> bytes:
    """A 256-bit storage key as its canonical 32-byte form."""
    return key.to_bytes(32, "big")


class StateMachineContext:
    """A :class:`~repro.vm.machine.MachineContext` over the world state."""

    def __init__(
        self,
        state: WorldState,
        contract: Address,
        caller: Address,
        callvalue: int,
        env: BlockEnv,
    ):
        self._state = state
        self._contract = contract
        self.address = address_to_word(contract)
        self.caller = address_to_word(caller)
        self.callvalue = callvalue
        self.chain_id = env.chain_id
        self.block_number = env.height
        self.timestamp = int(env.timestamp)
        self.logs: List[Tuple[List[int], bytes]] = []

    def storage_get(self, key: int) -> int:
        """Read the world-state slot as a 256-bit word."""
        raw = self._state.storage_get(self._contract, word_to_key(key))
        return int.from_bytes(raw, "big") if raw else 0

    def storage_set(self, key: int, value: int) -> None:
        """Write the world-state slot (journaled; zero deletes)."""
        raw = value.to_bytes(32, "big") if value else b""
        self._state.storage_set(self._contract, word_to_key(key), raw)

    def balance_of(self, address: int) -> int:
        """Native balance of the 20-byte tail of ``address``."""
        return self._state.balance_of(Address(address.to_bytes(20, "big")))

    def move_to(self, target_chain: int) -> None:
        """OP_MOVE: the contract moves itself (gas charged by the VM)."""
        if target_chain == self._state.chain_id:
            raise Revert("OP_MOVE target is the current chain")
        self._state.set_location(self._contract, target_chain, height=self.block_number)
        self._state.bump_move_nonce(self._contract)

    def location(self) -> int:
        """The executing contract's L_c."""
        return self._state.require_contract(self._contract).location

    def move_nonce(self) -> int:
        """The executing contract's move nonce."""
        return self._state.require_contract(self._contract).move_nonce

    def emit_log(self, topics: List[int], data: bytes) -> None:
        """Collect LOG events for the receipt."""
        self.logs.append((topics, data))


def execute_bytecode_call(
    state: WorldState,
    machine: Machine,
    contract: Address,
    caller: Address,
    calldata: bytes,
    value: int,
    env: BlockEnv,
    meter: GasMeter,
    category: str = "execution",
) -> ExecutionResult:
    """Run a call to a deployed bytecode contract.

    The caller (executor) is responsible for lock checks, value
    transfer and journaling; a failed run raises :class:`Revert` so the
    surrounding transaction aborts and rolls back.
    """
    record = state.require_contract(contract)
    code = state.code_store.get(record.code_hash)
    if code is None:
        raise Revert("bytecode missing from the code store")
    context = StateMachineContext(state, contract, caller, value, env)
    result = machine.execute(code, context, meter, category, calldata=calldata)
    if not result.success:
        raise Revert(result.error or "bytecode execution failed")
    return result
