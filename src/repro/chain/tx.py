"""Transactions and their canonical signed encoding.

Five payload kinds cover everything the paper's evaluation exercises:

* :class:`TransferPayload` — native currency between accounts;
* :class:`DeployPayload` — create a contract (CREATE or CREATE2);
* :class:`CallPayload` — invoke an external contract method;
* :class:`Move1Payload` — the Move protocol's first step: run the
  contract's ``moveTo`` guard, then assign ``L_c`` (OP_MOVE);
* :class:`Move2Payload` — the second step: recreate the contract from a
  Merkle proof bundle on the target chain.

Every transaction is signed by the submitting client over a canonical
byte encoding of its payload (paper Section II: "each transaction
cryptographically signed by the client").
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional, Tuple, Union

from repro.crypto.hashing import keccak_hex
from repro.crypto.keys import Address, KeyPair
from repro.crypto.signature import Signer, SimulatedSigner

_DEFAULT_SIGNER = SimulatedSigner()
#: public alias — batch verifiers must seed ``_verify_cache`` with the
#: *same* signer instance ``Transaction.verify`` defaults to (the cache
#: compares signers by identity)
DEFAULT_SIGNER = _DEFAULT_SIGNER
_tx_counter = itertools.count()


def canonical_encode(value: Any) -> bytes:
    """Deterministic byte encoding of payload values (for signing)."""
    if isinstance(value, bool):
        return b"b1" if value else b"b0"
    if isinstance(value, int):
        return b"i" + str(value).encode()
    if isinstance(value, float):
        return b"f" + repr(value).encode()
    if isinstance(value, str):
        return b"s" + value.encode()
    if isinstance(value, bytes):
        return b"y" + value
    if isinstance(value, Address):
        return b"a" + value.raw
    if value is None:
        return b"n"
    if isinstance(value, (tuple, list)):
        parts = b"".join(canonical_encode(v) for v in value)
        return b"l(" + parts + b")"
    if isinstance(value, dict):
        parts = b"".join(
            canonical_encode(k) + canonical_encode(value[k]) for k in sorted(value)
        )
        return b"d(" + parts + b")"
    if hasattr(value, "signing_fields"):
        return canonical_encode(value.signing_fields())
    raise TypeError(f"cannot canonically encode {type(value).__name__}")


@dataclass(frozen=True)
class TransferPayload:
    to: Address
    amount: int

    def signing_fields(self) -> Tuple[Any, ...]:
        """The tuple canonically encoded and signed."""
        return ("transfer", self.to, self.amount)


@dataclass(frozen=True)
class DeployPayload:
    code_hash: bytes
    args: Tuple[Any, ...] = ()
    value: int = 0
    salt: Optional[int] = None

    def signing_fields(self) -> Tuple[Any, ...]:
        """The tuple canonically encoded and signed."""
        return ("deploy", self.code_hash, self.args, self.value, self.salt)


@dataclass(frozen=True)
class CallPayload:
    target: Address
    method: str
    args: Tuple[Any, ...] = ()
    value: int = 0

    def signing_fields(self) -> Tuple[Any, ...]:
        """The tuple canonically encoded and signed."""
        return ("call", self.target, self.method, self.args, self.value)


@dataclass(frozen=True)
class DeployBytecodePayload:
    """Deploy raw VM bytecode (see :mod:`repro.chain.bytecode`)."""

    code: bytes
    value: int = 0
    salt: Optional[int] = None

    def signing_fields(self) -> Tuple[Any, ...]:
        """The tuple canonically encoded and signed."""
        return ("deploy-bytecode", self.code, self.value, self.salt)


@dataclass(frozen=True)
class BytecodeCallPayload:
    """Invoke a deployed bytecode contract with raw calldata."""

    target: Address
    calldata: bytes = b""
    value: int = 0

    def signing_fields(self) -> Tuple[Any, ...]:
        """The tuple canonically encoded and signed."""
        return ("bytecode-call", self.target, self.calldata, self.value)


@dataclass(frozen=True)
class Move1Payload:
    contract: Address
    target_chain: int

    def signing_fields(self) -> Tuple[Any, ...]:
        """The tuple canonically encoded and signed."""
        return ("move1", self.contract, self.target_chain)


@dataclass(frozen=True)
class Move2Payload:
    """Carries the full proof bundle; see :mod:`repro.core.proofs`."""

    bundle: Any  # ContractStateProof (kept loosely typed to avoid cycles)

    def signing_fields(self) -> Tuple[Any, ...]:
        """The tuple canonically encoded and signed."""
        return ("move2", self.bundle.signing_fields())


Payload = Union[
    TransferPayload,
    DeployPayload,
    CallPayload,
    DeployBytecodePayload,
    BytecodeCallPayload,
    Move1Payload,
    Move2Payload,
]


@dataclass
class Transaction:
    """A signed client transaction."""

    sender: Address
    public_key: bytes
    payload: Payload
    nonce: int
    signature: bytes = b""
    tx_id: str = ""
    #: local bookkeeping for experiments (set by harnesses, not signed)
    meta: dict = field(default_factory=dict)
    #: memoized canonical encoding, keyed by the signed fields — the
    #: encoding is the dominant cost of re-verification (mempool
    #: admission, executor, batch verifiers all call it)
    _sb_cache: Optional[Tuple[Tuple[Any, ...], bytes]] = field(
        default=None, repr=False, compare=False
    )
    #: memoized verification verdict, keyed by (signature, signing
    #: bytes, signer) so tampering with any signed field or the
    #: signature itself invalidates the cache
    _verify_cache: Optional[Tuple[bytes, bytes, Any, bool]] = field(
        default=None, repr=False, compare=False
    )

    def signing_bytes(self) -> bytes:
        """The exact bytes the client signature covers (memoized)."""
        key = (self.sender, self.public_key, self.nonce, self.payload)
        cached = self._sb_cache
        if cached is not None and cached[0] == key:
            return cached[1]
        encoded = canonical_encode(
            (self.sender, self.public_key, self.nonce, self.payload.signing_fields())
        )
        self._sb_cache = (key, encoded)
        return encoded

    def verify(self, signer: Signer = _DEFAULT_SIGNER) -> bool:
        """Check the signature and that the key matches the sender.

        The verdict is cached against the exact (signing bytes,
        signature) pair, so the mempool-admission check and the
        executor's re-validation don't pay for verification twice.
        """
        message = self.signing_bytes()
        cached = self._verify_cache
        if (
            cached is not None
            and cached[0] == self.signature
            and cached[1] == message
            and cached[2] is signer
        ):
            return cached[3]
        from repro.crypto.keys import derive_address

        ok = derive_address(self.public_key) == self.sender and signer.verify(
            self.public_key, message, self.signature
        )
        self._verify_cache = (self.signature, message, signer, ok)
        return ok


def sign_transaction(
    keypair: KeyPair,
    payload: Payload,
    nonce: Optional[int] = None,
    signer: Signer = _DEFAULT_SIGNER,
) -> Transaction:
    """Build and sign a transaction from ``keypair``.

    ``nonce`` defaults to a process-unique counter — enough to make
    otherwise-identical transactions distinct; chains do not enforce
    strict EOA nonce ordering in this reproduction (the replay guard
    that matters to the Move protocol is the *contract* move nonce).
    """
    tx = Transaction(
        sender=keypair.address,
        public_key=keypair.public_key,
        payload=payload,
        nonce=nonce if nonce is not None else next(_tx_counter),
    )
    tx.signature = signer.sign(keypair.seed, tx.signing_bytes())
    tx.tx_id = keccak_hex(tx.signing_bytes(), tx.signature)
    return tx
