"""Blockchain substrate: blocks, transactions, mempool, execution.

A :class:`~repro.chain.chain.Chain` is the logical replicated state
machine: it executes committed blocks against the world state and
assigns each block header its ``state_root``.  *When* blocks commit is
decided by a consensus engine from :mod:`repro.consensus` driving the
chain over the simulated network.

Chain flavours (paper Section VI):

* **Burrow-flavoured** — Tendermint consensus, 5 s blocks, IAVL state
  tree, confirmation depth p = 2, and the Tendermint quirk that the
  application state root of block *n* is only carried by header *n+1*;
* **Ethereum-flavoured** — PoW, 15 s expected blocks, Patricia-trie
  state, p = 6, per-byte code deposit charged on contract creation.
"""

from repro.chain.block import Block, BlockHeader
from repro.chain.chain import Chain
from repro.chain.lightclient import HeaderStore, LightClient
from repro.chain.mempool import Mempool
from repro.chain.params import BURROW_PARAMS, ETHEREUM_PARAMS, ChainParams
from repro.chain.tx import (
    CallPayload,
    DeployPayload,
    Move1Payload,
    Move2Payload,
    Transaction,
    TransferPayload,
    sign_transaction,
)

__all__ = [
    "Block",
    "BlockHeader",
    "Chain",
    "ChainParams",
    "BURROW_PARAMS",
    "ETHEREUM_PARAMS",
    "Mempool",
    "HeaderStore",
    "LightClient",
    "Transaction",
    "sign_transaction",
    "CallPayload",
    "DeployPayload",
    "TransferPayload",
    "Move1Payload",
    "Move2Payload",
]
