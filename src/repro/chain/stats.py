"""Chain introspection: the numbers an explorer front-end would show.

Aggregates per-chain statistics from blocks and state — block cadence,
transaction mix and success rate, gas, contract census, Move-protocol
activity — used by the CLI's ``inspect`` views and by experiment
post-mortems.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional

from repro.chain.chain import Chain
from repro.chain.tx import (
    BytecodeCallPayload,
    CallPayload,
    DeployBytecodePayload,
    DeployPayload,
    Move1Payload,
    Move2Payload,
    TransferPayload,
)

_KIND_NAMES = {
    TransferPayload: "transfer",
    DeployPayload: "deploy",
    CallPayload: "call",
    DeployBytecodePayload: "deploy-bytecode",
    BytecodeCallPayload: "bytecode-call",
    Move1Payload: "move1",
    Move2Payload: "move2",
}


@dataclass
class ChainStats:
    """A snapshot of one chain's history and state."""

    chain_id: int
    name: str
    flavor: str
    height: int
    total_txs: int = 0
    failed_txs: int = 0
    tx_kinds: Dict[str, int] = field(default_factory=dict)
    total_gas: int = 0
    mean_block_interval: Optional[float] = None
    mean_block_fill: float = 0.0
    contracts_total: int = 0
    contracts_active: int = 0
    contracts_locked: int = 0
    moves_in: int = 0
    moves_out: int = 0
    moves_failed: int = 0
    storage_slots: int = 0
    storage_bytes: int = 0

    @property
    def success_rate(self) -> float:
        if not self.total_txs:
            return 1.0
        return 1.0 - self.failed_txs / self.total_txs

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready snapshot (all fields plus the derived rate)."""
        out = asdict(self)
        out["success_rate"] = self.success_rate
        return out

    def lines(self) -> List[str]:
        """Human-readable summary block."""
        out = [
            f"chain {self.chain_id} ({self.name}, {self.flavor}-flavoured)",
            f"  height          : {self.height}",
            f"  transactions    : {self.total_txs} "
            f"({self.success_rate * 100:.1f}% success)",
        ]
        if self.tx_kinds:
            mix = ", ".join(f"{k}:{v}" for k, v in sorted(self.tx_kinds.items()))
            out.append(f"  tx mix          : {mix}")
        if self.mean_block_interval is not None:
            out.append(f"  block interval  : {self.mean_block_interval:.2f} s mean")
        out.append(f"  block fill      : {self.mean_block_fill * 100:.1f}% of capacity")
        out.append(f"  gas             : {self.total_gas:,} total")
        out.append(
            f"  contracts       : {self.contracts_total} "
            f"({self.contracts_active} active, {self.contracts_locked} moved away)"
        )
        out.append(
            f"  moves           : {self.moves_in} in, {self.moves_out} out, "
            f"{self.moves_failed} failed"
        )
        out.append(
            f"  storage         : {self.storage_slots} slots, {self.storage_bytes:,} bytes"
        )
        return out


def collect_chain_stats(chain: Chain) -> ChainStats:
    """Walk a chain's blocks, receipts and state into a snapshot."""
    stats = ChainStats(
        chain_id=chain.chain_id,
        name=chain.params.name,
        flavor=chain.params.flavor,
        height=chain.height,
    )
    kinds: Counter = Counter()
    fills: List[float] = []
    timestamps: List[float] = []
    for block in chain.blocks[1:]:
        timestamps.append(block.header.timestamp)
        fills.append(len(block.transactions) / chain.params.max_block_txs)
        for tx in block.transactions:
            stats.total_txs += 1
            kinds[_KIND_NAMES.get(type(tx.payload), "other")] += 1
            receipt = chain.receipts.get(tx.tx_id)
            if receipt is not None:
                stats.total_gas += receipt.gas_used
                if not receipt.success:
                    stats.failed_txs += 1
                    if isinstance(tx.payload, (Move1Payload, Move2Payload)):
                        stats.moves_failed += 1
                elif isinstance(tx.payload, Move2Payload):
                    stats.moves_in += 1
            if isinstance(tx.payload, Move1Payload) and receipt and receipt.success:
                stats.moves_out += 1
    stats.tx_kinds = dict(kinds)
    if len(timestamps) >= 2:
        gaps = [b - a for a, b in zip(timestamps, timestamps[1:])]
        stats.mean_block_interval = sum(gaps) / len(gaps)
    if fills:
        stats.mean_block_fill = sum(fills) / len(fills)

    for record in chain.state.contracts.values():
        stats.contracts_total += 1
        if record.location == chain.chain_id:
            stats.contracts_active += 1
        else:
            stats.contracts_locked += 1
        stats.storage_slots += len(record.storage)
        stats.storage_bytes += sum(
            len(k) + len(v) for k, v in record.storage.items()
        )
    return stats
