"""Transaction mempool: FIFO with de-duplication."""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional

from repro.chain.tx import Transaction


class Mempool:
    """Pending transactions awaiting inclusion.

    FIFO order approximates the gossip arrival order the paper's
    clients observe; duplicates (same tx id) are dropped.
    """

    def __init__(self) -> None:
        self._pending: "OrderedDict[str, Transaction]" = OrderedDict()

    def add(self, tx: Transaction) -> bool:
        """Queue a transaction; returns False for duplicates."""
        if tx.tx_id in self._pending:
            return False
        self._pending[tx.tx_id] = tx
        return True

    def take(self, limit: int) -> List[Transaction]:
        """Dequeue up to ``limit`` transactions (oldest first)."""
        out: List[Transaction] = []
        while self._pending and len(out) < limit:
            _tx_id, tx = self._pending.popitem(last=False)
            out.append(tx)
        return out

    def remove(self, tx_id: str) -> Optional[Transaction]:
        """Drop a specific pending transaction (e.g. seen in a block)."""
        return self._pending.pop(tx_id, None)

    def __len__(self) -> int:
        return len(self._pending)

    def __contains__(self, tx_id: str) -> bool:
        return tx_id in self._pending
