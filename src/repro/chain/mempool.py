"""Transaction mempool: FIFO with de-duplication."""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional

from repro.chain.tx import Transaction
from repro.telemetry.metrics import MetricsRegistry


class Mempool:
    """Pending transactions awaiting inclusion.

    FIFO order approximates the gossip arrival order the paper's
    clients observe; duplicates (same tx id) are dropped.  Admission,
    rejection and queue depth feed the chain's shared
    :class:`~repro.telemetry.metrics.MetricsRegistry`.
    """

    def __init__(self, metrics: Optional[MetricsRegistry] = None, chain_id: int = 0):
        self._pending: "OrderedDict[str, Transaction]" = OrderedDict()
        metrics = metrics if metrics is not None else MetricsRegistry()
        self._m_admitted = metrics.counter("mempool_admitted_total", chain=chain_id)
        self._m_duplicates = metrics.counter("mempool_duplicates_total", chain=chain_id)
        self._m_depth = metrics.gauge("mempool_depth", chain=chain_id)

    def add(self, tx: Transaction) -> bool:
        """Queue a transaction; returns False for duplicates."""
        if tx.tx_id in self._pending:
            self._m_duplicates.inc()
            return False
        self._pending[tx.tx_id] = tx
        self._m_admitted.inc()
        self._m_depth.set(len(self._pending))
        return True

    def take(self, limit: int) -> List[Transaction]:
        """Dequeue up to ``limit`` transactions (oldest first)."""
        out: List[Transaction] = []
        while self._pending and len(out) < limit:
            _tx_id, tx = self._pending.popitem(last=False)
            out.append(tx)
        if out:
            self._m_depth.set(len(self._pending))
        return out

    def remove(self, tx_id: str) -> Optional[Transaction]:
        """Drop a specific pending transaction (e.g. seen in a block)."""
        tx = self._pending.pop(tx_id, None)
        if tx is not None:
            self._m_depth.set(len(self._pending))
        return tx

    def __len__(self) -> int:
        return len(self._pending)

    def __contains__(self, tx_id: str) -> bool:
        return tx_id in self._pending
