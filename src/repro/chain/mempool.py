"""Transaction mempool: FIFO with de-duplication and a sender index.

Admission is O(1): pending transactions live in an ``OrderedDict``
keyed by tx id (FIFO order approximates gossip arrival order, which is
what the paper's clients observe), and a ``sender -> {nonce}`` index is
maintained alongside so duplicate detection, per-sender queries and
nonce-replay checks never scan the pool — with tens of thousands of
transactions backed up behind a saturated shard, a linear scan per
admission would turn the mempool itself into the bottleneck.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Set

from repro.chain.tx import Transaction
from repro.crypto.keys import Address
from repro.telemetry.metrics import MetricsRegistry


class Mempool:
    """Pending transactions awaiting inclusion.

    FIFO order approximates the gossip arrival order the paper's
    clients observe; duplicates (same tx id) are dropped.  Admission,
    rejection and queue depth feed the chain's shared
    :class:`~repro.telemetry.metrics.MetricsRegistry`.
    """

    def __init__(self, metrics: Optional[MetricsRegistry] = None, chain_id: int = 0):
        self._pending: "OrderedDict[str, Transaction]" = OrderedDict()
        #: sender -> set of pending nonces (the admission index)
        self._by_sender: Dict[Address, Set[int]] = {}
        metrics = metrics if metrics is not None else MetricsRegistry()
        self._m_admitted = metrics.counter("mempool_admitted_total", chain=chain_id)
        self._m_duplicates = metrics.counter("mempool_duplicates_total", chain=chain_id)
        self._m_depth = metrics.gauge("mempool_depth", chain=chain_id)

    def add(self, tx: Transaction) -> bool:
        """Queue a transaction; returns False for duplicates.

        O(1): one pool-dict insert plus one sender-index insert — no
        iteration over pending transactions, whatever the depth.
        """
        if tx.tx_id in self._pending:
            self._m_duplicates.inc()
            return False
        self._pending[tx.tx_id] = tx
        self._by_sender.setdefault(tx.sender, set()).add(tx.nonce)
        self._m_admitted.inc()
        self._m_depth.set(len(self._pending))
        return True

    def _unindex(self, tx: Transaction) -> None:
        nonces = self._by_sender.get(tx.sender)
        if nonces is not None:
            nonces.discard(tx.nonce)
            if not nonces:
                del self._by_sender[tx.sender]

    def take(self, limit: int) -> List[Transaction]:
        """Dequeue up to ``limit`` transactions (oldest first)."""
        out: List[Transaction] = []
        while self._pending and len(out) < limit:
            _tx_id, tx = self._pending.popitem(last=False)
            self._unindex(tx)
            out.append(tx)
        if out:
            self._m_depth.set(len(self._pending))
        return out

    def remove(self, tx_id: str) -> Optional[Transaction]:
        """Drop a specific pending transaction (e.g. seen in a block)."""
        tx = self._pending.pop(tx_id, None)
        if tx is not None:
            self._unindex(tx)
            self._m_depth.set(len(self._pending))
        return tx

    # -- sender-index queries (O(1) in pool depth) ---------------------

    def pending_count_of(self, sender: Address) -> int:
        """How many transactions from ``sender`` are pending."""
        nonces = self._by_sender.get(sender)
        return len(nonces) if nonces is not None else 0

    def has_pending_nonce(self, sender: Address, nonce: int) -> bool:
        """Is a transaction with this (sender, nonce) already queued?
        (The nonce-replay probe a stricter admission policy would use.)"""
        nonces = self._by_sender.get(sender)
        return nonces is not None and nonce in nonces

    def __len__(self) -> int:
        return len(self._pending)

    def __contains__(self, tx_id: str) -> bool:
        return tx_id in self._pending
