"""Blocks: header + body, hashing, transaction-root commitment."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.chain.tx import Transaction
from repro.crypto.hashing import keccak
from repro.merkle.binary import BinaryMerkleTree

GENESIS_PARENT = b"\x00" * 32


@dataclass(frozen=True)
class BlockHeader:
    """Block header — what light clients download and trust.

    ``state_root`` is the Merkle root ``m`` against which Move2 proofs
    verify.  On Burrow-flavoured chains it is the root of the *previous*
    block's post-state (``state_root_lag = 1``); on Ethereum-flavoured
    chains it is this block's post-state.
    """

    chain_id: int
    height: int
    parent_hash: bytes
    state_root: bytes
    txs_root: bytes
    timestamp: float
    proposer: str = ""

    def hash(self) -> bytes:
        """Digest over every header field (the block id)."""
        return keccak(
            b"header",
            self.chain_id.to_bytes(8, "big"),
            self.height.to_bytes(8, "big"),
            self.parent_hash,
            self.state_root,
            self.txs_root,
            repr(self.timestamp).encode(),
            self.proposer.encode(),
        )

    def size_bytes(self) -> int:
        """Serialized header size — what a light client downloads.

        Section III-A: "block headers have a constant size of usually
        hundreds of bytes and are on average a small fraction of block
        bodies" (~2 % on Ethereum).
        """
        return 8 + 8 + 32 + 32 + 32 + 8 + len(self.proposer.encode())


@dataclass
class Block:
    """Header plus transaction body."""

    header: BlockHeader
    transactions: List[Transaction] = field(default_factory=list)

    def hash(self) -> bytes:
        """The block's id (its header hash)."""
        return self.header.hash()

    def body_size_bytes(self) -> int:
        """Approximate serialized body size (the signed transactions)."""
        return sum(
            len(tx.signing_bytes()) + len(tx.signature) for tx in self.transactions
        )

    @property
    def height(self) -> int:
        return self.header.height


def transactions_root(transactions: List[Transaction]) -> bytes:
    """Commit the ordered tx list (binary Merkle tree over tx ids)."""
    return BinaryMerkleTree([tx.tx_id.encode() for tx in transactions]).root
