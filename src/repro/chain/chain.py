"""The chain facade: one replicated state machine.

A :class:`Chain` owns the world state, runtime, mempool and block list;
a consensus engine (:mod:`repro.consensus`) decides *when*
:meth:`produce_block` fires.  The chain also serves the Move protocol's
data needs:

* it retains an O(1) tree snapshot per block so clients can extract
  **historical** account proofs (a Move2 proof targets the root of the
  Move1 block, which is ``p`` blocks behind the head by the time the
  proof is usable);
* it exposes the header stream that peer chains' light clients consume;
* its own :class:`~repro.chain.lightclient.LightClient` holds the peer
  headers that ``VS`` checks during Move2 execution.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.chain.block import GENESIS_PARENT, Block, BlockHeader, transactions_root
from repro.chain.executor import TransactionExecutor
from repro.chain.lightclient import LightClient
from repro.chain.mempool import Mempool
from repro.chain.params import ChainParams
from repro.chain.tx import Transaction
from repro.core.proofs import ContractStateProof
from repro.core.registry import ChainRegistry
from repro.crypto.keys import Address
from repro.errors import ProofError, StateError
from repro.merkle.protocol import AuthenticatedTree
from repro.runtime.context import BlockEnv
from repro.runtime.runtime import Runtime
from repro.statedb.receipts import Receipt
from repro.statedb.state import WorldState
from repro.telemetry import Telemetry

BlockListener = Callable[[Block, List[Receipt]], None]


class Chain:
    """One blockchain: state machine + ledger + light clients."""

    def __init__(
        self,
        params: ChainParams,
        registry: Optional[ChainRegistry] = None,
        verify_signatures: bool = True,
        telemetry: Optional[Telemetry] = None,
    ):
        self.params = params
        self.registry = registry if registry is not None else ChainRegistry()
        if params.chain_id not in self.registry:
            self.registry.register(params)
        #: shared tracing + metrics; the default is a private, disabled
        #: bundle so an un-instrumented chain stays dependency-free
        self.telemetry = telemetry if telemetry is not None else Telemetry.disabled()
        metrics = self.telemetry.metrics
        self._m_blocks = metrics.counter("chain_blocks_total", chain=params.chain_id)
        self._m_block_txs = metrics.histogram("chain_block_txs", chain=params.chain_id)
        self._m_headers_in = metrics.counter(
            "lightclient_headers_total", chain=params.chain_id
        )
        self.state = WorldState(params.chain_id, params.tree_factory)
        self.runtime = Runtime(self.state, params.gas_schedule)
        self.light_client = LightClient()
        self.executor = TransactionExecutor(
            self.runtime,
            self.light_client,
            self.registry,
            verify_signatures,
            gas_price=params.gas_price,
            telemetry=self.telemetry,
            chain_id=params.chain_id,
        )
        #: optimistic parallel block pipeline (None = serial loop); the
        #: last block's ParallelBlockReport is kept for benchmarks
        self.parallel_executor = None
        self.last_parallel_report = None
        #: batched ahead-of-block signature verification (process
        #: backend only: with thread speculation the signature check is
        #: already inside the speculated slice, and a synchronous
        #: verifier pool would serialize it twice)
        self.verifier_pool = None
        if params.executor_workers >= 1:
            from repro.parallel.executor import ParallelBlockExecutor

            self.parallel_executor = ParallelBlockExecutor(
                self.executor,
                workers=params.executor_workers,
                telemetry=self.telemetry,
                chain_id=params.chain_id,
                backend=params.executor_backend,
            )
            if params.executor_backend == "process" and verify_signatures:
                from repro.parallel.pools import SignatureVerifierPool

                self.verifier_pool = SignatureVerifierPool(
                    workers=params.executor_workers, use_processes=True
                )
        self.mempool = Mempool(metrics=metrics, chain_id=params.chain_id)
        self.blocks: List[Block] = []
        self.receipts: Dict[str, Receipt] = {}
        self._tree_snapshots: Dict[int, AuthenticatedTree] = {}
        self._post_roots: Dict[int, bytes] = {}
        #: lowest non-genesis height whose snapshot is still retained;
        #: advances as produce_block prunes past the retention horizon
        self._snapshot_floor = 1
        self._listeners: List[BlockListener] = []
        #: called after each *peer* header is ingested by the light
        #: client — the replication relays' sync trigger (store first,
        #: listener second, so a listener always sees the new head)
        self._header_listeners: List[Callable[[BlockHeader], None]] = []
        #: per-contract capture of storage deltas at block boundaries,
        #: serving staleness-bounded replica updates (repro.replicate)
        self._replication_logs: Dict[Address, Any] = {}
        self._waiters: Dict[str, List[Callable[[Receipt], None]]] = {}
        self._make_genesis()

    # ------------------------------------------------------------------
    # Genesis / identity
    # ------------------------------------------------------------------

    @property
    def chain_id(self) -> int:
        return self.params.chain_id

    @property
    def height(self) -> int:
        return self.blocks[-1].height if self.blocks else -1

    @property
    def head(self) -> Block:
        return self.blocks[-1]

    def _make_genesis(self) -> None:
        root = self.state.commit()
        header = BlockHeader(
            chain_id=self.chain_id,
            height=0,
            parent_hash=GENESIS_PARENT,
            state_root=root,
            txs_root=transactions_root([]),
            timestamp=0.0,
            proposer="genesis",
        )
        self.blocks.append(Block(header=header, transactions=[]))
        self._post_roots[0] = root
        self._tree_snapshots[0] = self.state.snapshot_tree()

    def fund(self, allocations: Dict[Address, int]) -> None:
        """Credit genesis balances (call before the experiment starts).

        Re-commits the state so the head's root reflects the funding.
        """
        for address, amount in allocations.items():
            self.state.add_balance(address, amount)
        root = self.state.commit()
        self._post_roots[self.height] = root
        self._tree_snapshots[self.height] = self.state.snapshot_tree()

    # ------------------------------------------------------------------
    # Transactions and blocks
    # ------------------------------------------------------------------

    def submit(self, tx: Transaction) -> bool:
        """Queue a transaction for inclusion; False for duplicates.

        Duplicate delivery is idempotent end-to-end: the mempool
        de-duplicates *pending* transactions, and a copy arriving after
        the original already executed (a gossip duplicate delayed past
        inclusion) is rejected here — without this receipt check the
        transaction would re-enter the mempool and execute twice.
        """
        tracer = self.telemetry.tracer
        if tx.tx_id in self.receipts:
            if tracer.enabled and tx.meta:
                tracer.meta_event(tx.meta, "mempool.duplicate", chain=self.chain_id)
            return False
        admitted = self.mempool.add(tx)
        if tracer.enabled and tx.meta:
            tracer.meta_event(
                tx.meta,
                "mempool.admit" if admitted else "mempool.duplicate",
                chain=self.chain_id,
            )
        return admitted

    def submit_batch(self, txs: List[Transaction]) -> int:
        """Admit a batch and start verifying its signatures off-path.

        Counts admissions; when a verifier pool is attached (process
        backend), the admitted transactions' signatures are checked in
        worker processes *while the block interval elapses*, seeding
        each transaction's verify memo — ``produce_block`` collects the
        verdicts before execution, so neither the serial loop nor the
        speculation workers re-pay the verification.
        """
        admitted = [tx for tx in txs if self.submit(tx)]
        if self.verifier_pool is not None and admitted:
            self.verifier_pool.submit_prewarm(admitted)
        return len(admitted)

    def close(self) -> None:
        """Release worker pools (idempotent; the chain stays usable —
        pools are recreated lazily on the next parallel block)."""
        if self.parallel_executor is not None:
            self.parallel_executor.close()
        if self.verifier_pool is not None:
            self.verifier_pool.close()

    def subscribe(self, listener: BlockListener) -> None:
        """Invoke ``listener(block, receipts)`` after each block."""
        self._listeners.append(listener)

    def unsubscribe(self, listener: BlockListener) -> None:
        """Detach a block listener (no-op if absent)."""
        try:
            self._listeners.remove(listener)
        except ValueError:
            pass

    def wait_for(self, tx_id: str, callback: Callable[[Receipt], None]) -> None:
        """Invoke ``callback(receipt)`` when the transaction executes.

        Fires immediately if the transaction is already in a block.
        """
        receipt = self.receipts.get(tx_id)
        if receipt is not None:
            callback(receipt)
            return
        self._waiters.setdefault(tx_id, []).append(callback)

    def produce_block(
        self,
        timestamp: float,
        proposer: str = "",
        txs: Optional[List[Transaction]] = None,
    ) -> Block:
        """Execute the next block (consensus calls this at commit time).

        ``txs`` lets the consensus engine fix the block contents at
        proposal time (Tendermint semantics); when omitted, the block
        takes the mempool head at commit time (PoW-style, where the
        winning miner assembled the block just before finding it).
        """
        height = self.height + 1
        env = BlockEnv(chain_id=self.chain_id, height=height, timestamp=timestamp)
        if txs is None:
            txs = self.mempool.take(self.params.max_block_txs)
        if self.verifier_pool is not None:
            # Harvest the ahead-of-block signature verdicts: execution
            # (and the speculation workers, which inherit the memo via
            # the wave encoding) now hits the verify cache.
            self.verifier_pool.collect()
        if self.parallel_executor is not None:
            # Schedule → speculate → validate/commit pipeline; receipts
            # come back in transaction order, byte-identical to the
            # serial loop below for any worker count.
            receipts, report = self.parallel_executor.execute_block(txs, env)
            self.last_parallel_report = report
        else:
            receipts = [self.executor.execute(tx, env) for tx in txs]
        for tx, receipt in zip(txs, receipts):
            receipt.block_height = height
            receipt.block_time = timestamp
            self.receipts[tx.tx_id] = receipt

        self._m_blocks.inc()
        self._m_block_txs.observe(len(txs))

        if self._replication_logs:
            self._capture_replication(height)

        post_root = self.state.commit()
        self._post_roots[height] = post_root
        self._tree_snapshots[height] = self.state.snapshot_tree()
        self._prune_expired_snapshots(head=height)

        # Header root: Burrow-flavoured chains publish the *previous*
        # block's post-state root (state_root_lag = 1).
        root_height = height - self.params.state_root_lag
        header_root = self._post_roots.get(root_height, self._post_roots[0])
        header = BlockHeader(
            chain_id=self.chain_id,
            height=height,
            parent_hash=self.head.hash(),
            state_root=header_root,
            txs_root=transactions_root(txs),
            timestamp=timestamp,
            proposer=proposer,
        )
        block = Block(header=header, transactions=txs)
        self.blocks.append(block)

        for receipt in receipts:
            for callback in self._waiters.pop(receipt.tx_id, ()):
                callback(receipt)
        for listener in list(self._listeners):
            listener(block, receipts)
        return block

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def view(self, target: Address, method: str, *args: Any) -> Any:
        """Read-only contract query at the current head (the contract
        sees the head's height and timestamp)."""
        env = BlockEnv(
            chain_id=self.chain_id,
            height=self.height,
            timestamp=self.head.header.timestamp,
        )
        return self.runtime.view(target, method, args, env=env)

    def location_of(self, address: Address) -> Optional[int]:
        """The contract's ``L_c`` as recorded here, or None."""
        record = self.state.contract(address)
        return record.location if record is not None else None

    def balance_of(self, address: Address) -> int:
        """Native balance at the current head."""
        return self.state.balance_of(address)

    # ------------------------------------------------------------------
    # Move protocol support
    # ------------------------------------------------------------------

    def proof_header_height(self, inclusion_height: int) -> int:
        """Own-chain header height whose root commits the post-state of
        ``inclusion_height`` (applies the Burrow lag)."""
        return inclusion_height + self.params.state_root_lag

    def proof_ready_height(self, inclusion_height: int) -> int:
        """Own-chain head height at which a Move1 included at
        ``inclusion_height`` becomes provable to peers (header published
        and ``p``-confirmed)."""
        return self.proof_header_height(inclusion_height) + self.params.confirmation_depth

    def prove_contract_at(self, address: Address, state_height: int) -> ContractStateProof:
        """Build a Move2 proof bundle against the post-state of block
        ``state_height`` (normally the Move1 inclusion height).

        The contract must be locked (moved away) so its live record
        still equals the historical one — which the resulting bundle's
        self-verification guarantees.
        """
        record = self.state.contract(address)
        if record is None:
            raise ProofError(f"no contract at {address}")
        tree = self._tree_snapshots.get(state_height)
        if tree is None:
            raise ProofError(f"no state snapshot at height {state_height}")
        account_proof = tree.prove(address.raw)
        code = self.state.code_store.get(record.code_hash)
        if code is None:
            raise ProofError("contract code missing from the code store")
        bundle = ContractStateProof(
            source_chain=self.chain_id,
            contract=address,
            code=code,
            storage=dict(record.storage),
            balance=record.balance,
            location=record.location,
            move_nonce=record.move_nonce,
            account_proof=account_proof,
            proof_height=self.proof_header_height(state_height),
        )
        expected_root = self._post_roots[state_height]
        if not bundle.verify_against_root(expected_root, self.params.tree_factory):
            raise ProofError(
                f"contract state at head no longer matches height {state_height} "
                "(was it modified after the proof height?)"
            )
        return bundle

    def prove_storage_entry(self, container: Address, key: bytes, state_height: int):
        """Build a :class:`~repro.core.proofs.RemoteStateProof` that
        ``container``'s storage maps ``key`` at block ``state_height``.

        This is the generic attestation primitive of Section V-A: any
        contract on any peer chain can verify the entry against this
        chain's p-confirmed headers (via the light-client builtin).
        Like :meth:`prove_contract_at`, it requires the container's
        current storage to still match the historical root.
        """
        from repro.core.proofs import RemoteStateProof

        record = self.state.contract(container)
        if record is None:
            raise ProofError(f"no contract at {container}")
        tree = self._tree_snapshots.get(state_height)
        if tree is None:
            raise ProofError(f"no state snapshot at height {state_height}")
        account_proof = tree.prove(container.raw)
        # Serve the storage proof from the contract's committed trie
        # snapshot (O(1) to obtain, O(log S) to prove) instead of
        # rebuilding the trie from the raw slots; the historical-root
        # check below still guards against post-height mutation.
        storage_tree = self.state.storage_trie_snapshot(container)
        try:
            storage_proof = storage_tree.prove(key)
        except KeyError:
            raise ProofError(f"container has no storage entry {key.hex()[:16]}…") from None
        proof = RemoteStateProof(
            chain_id=self.chain_id,
            height=self.proof_header_height(state_height),
            container=container,
            account_proof=account_proof,
            storage_proof=storage_proof,
        )
        expected_root = self._post_roots[state_height]
        if account_proof.computed_root() != expected_root or (
            account_proof.value[-32:] != storage_tree.root_hash
        ):
            raise ProofError(
                f"container storage at head no longer matches height {state_height}"
            )
        return proof

    def gc_stale(self, min_age_blocks: int = 0):
        """Collect storage of moved-away contracts (paper §III-G c).

        Runs between blocks; the reclaimed leaves re-commit on the next
        block.  Replay protection survives: tombstones keep each
        contract's move nonce and forwarding location.  Returns the
        :class:`~repro.core.gc.GCReport`.
        """
        from repro.core.gc import collect_stale_contracts

        return collect_stale_contracts(
            self.state, current_height=self.height, min_age_blocks=min_age_blocks
        )

    # ------------------------------------------------------------------
    # Replication support (repro.replicate)
    # ------------------------------------------------------------------

    def enable_replication(self, address: Address):
        """Start capturing per-block storage deltas for ``address`` so
        replica updates can be served without the historical-root
        restriction of :meth:`prove_contract_at` (which fails for hot
        contracts).  Idempotent; returns the contract's
        :class:`~repro.replicate.log.ReplicationLog`."""
        from repro.replicate.log import ReplicationLog

        log = self._replication_logs.get(address)
        if log is None:
            record = self.state.require_contract(address)
            log = ReplicationLog(self.height, dict(record.storage))
            self._replication_logs[address] = log
        return log

    def replication_log(self, address: Address):
        """The contract's replication log, or None when not replicated."""
        return self._replication_logs.get(address)

    def disable_replication(self, address: Address) -> None:
        """Stop capturing deltas for ``address`` (no-op if absent)."""
        self._replication_logs.pop(address, None)

    def _capture_replication(self, height: int) -> None:
        """Record this block's storage changes for every replicated
        contract — called just before ``state.commit()`` folds the
        dirty sets away."""
        horizon = (
            height - self.params.snapshot_retention
            if self.params.snapshot_retention > 0
            else None
        )
        for address, log in self._replication_logs.items():
            record = self.state.contract(address)
            if record is None:
                continue
            changes = self.state.pending_storage_changes(address)
            if changes is None:
                # Wholesale replacement (Move2 load / GC wipe): rebase
                # the log on the full post-block image.
                log.rebase(height, dict(record.storage))
            else:
                log.append(height, changes)
            if horizon is not None:
                log.trim(horizon)

    def build_replica_update(
        self, address: Address, since: Optional[int] = None, upto: Optional[int] = None
    ):
        """Build a verifiable :class:`~repro.replicate.protocol.ReplicaUpdate`
        bringing a mirror from the post-state of block ``since`` to the
        post-state of block ``upto`` (default: the newest height whose
        root a header already publishes).

        ``since=None`` — or a ``since`` older than the log's retained
        window — yields a full-image update; otherwise the update
        carries only the slots written in ``(since, upto]``.  The
        account proof is served from the retained tree snapshot at
        ``upto``, exactly like a Move2 proof.
        """
        from repro.replicate.protocol import ReplicaUpdate

        log = self._replication_logs.get(address)
        if log is None:
            raise ProofError(f"replication not enabled for {address}")
        record = self.state.contract(address)
        if record is None:
            raise ProofError(f"no contract at {address}")
        if upto is None:
            upto = self.height - self.params.state_root_lag
        tree = self._tree_snapshots.get(upto)
        if tree is None:
            raise ProofError(f"no state snapshot at height {upto}")
        try:
            account_proof = tree.prove(address.raw)
        except KeyError:
            raise ProofError(
                f"contract not committed at height {upto} (created later?)"
            ) from None
        code = self.state.code_store.get(record.code_hash)
        if code is None:
            raise ProofError("contract code missing from the code store")
        delta = None
        if since is not None:
            delta = log.delta_between(since, upto)
        image = None if delta is not None else log.image_at(upto)
        return ReplicaUpdate(
            source_chain=self.chain_id,
            contract=address,
            state_height=upto,
            proof_height=self.proof_header_height(upto),
            since_height=since if delta is not None else None,
            delta=delta,
            image=image,
            code=code,
            account_proof=account_proof,
        )

    def subscribe_headers(self, listener: Callable[[BlockHeader], None]) -> None:
        """Invoke ``listener(header)`` after each peer header lands in
        this chain's light client (the store is updated first, so the
        listener can immediately query confirmation state)."""
        self._header_listeners.append(listener)

    def unsubscribe_headers(self, listener: Callable[[BlockHeader], None]) -> None:
        """Detach a header listener (no-op if absent)."""
        try:
            self._header_listeners.remove(listener)
        except ValueError:
            pass

    def _prune_expired_snapshots(self, head: int) -> None:
        """Bound snapshot/root retention to the configured horizon.

        Runs after every block: snapshots and post-state roots older
        than ``params.snapshot_retention`` blocks are dropped, so
        neither ``_post_roots`` nor ``_tree_snapshots`` grows without
        bound on a long-running chain.  The horizon is sized to outlive
        every peer's light-client confirmation window and the GC age
        gate (see :class:`~repro.chain.params.ChainParams`), so no
        still-provable Move1 loses its snapshot.
        """
        retention = self.params.snapshot_retention
        if retention <= 0:
            return
        self._drop_snapshots_below(head - retention)

    def _drop_snapshots_below(self, horizon: int) -> int:
        """Drop snapshots/roots at heights ``(0, horizon)``; height 0
        stays as the header-root fallback for the first lagged blocks.
        Returns how many snapshots were dropped."""
        dropped = 0
        while self._snapshot_floor < horizon:
            if self._tree_snapshots.pop(self._snapshot_floor, None) is not None:
                dropped += 1
            self._post_roots.pop(self._snapshot_floor, None)
            self._snapshot_floor += 1
        return dropped

    def prune_snapshots(self, keep_last: int) -> int:
        """Drop per-block tree snapshots older than ``keep_last`` blocks
        (historical proofs beyond that horizon become unavailable —
        safe once peers' confirmation windows have passed).  Returns
        how many snapshots were dropped."""
        return self._drop_snapshots_below(self.height - keep_last)

    def verify_chain(self) -> bool:
        """Structural self-audit of the ledger.

        Checks what a syncing full node would: every header links to
        its parent by hash, heights are contiguous, and every header's
        ``txs_root`` recommits to the block body.  (State roots require
        re-execution to check and are covered by the replica-determinism
        tests instead.)  Raises :class:`StateError` on the first
        violation; returns True otherwise.
        """
        for previous, block in zip(self.blocks, self.blocks[1:]):
            if block.header.parent_hash != previous.hash():
                raise StateError(f"broken parent link at height {block.height}")
            if block.height != previous.height + 1:
                raise StateError(f"non-contiguous height at {block.height}")
            if block.header.txs_root != transactions_root(block.transactions):
                raise StateError(f"txs_root mismatch at height {block.height}")
        return True

    def observe_chain(self, params: ChainParams, fork_aware: bool = False) -> None:
        """Start maintaining a light client of a peer chain.

        ``fork_aware=True`` tracks competing branches of the peer
        (appropriate for PoW peers, whose chains reorg); the default
        store suits BFT peers with instant finality.
        """
        if params.chain_id not in self.registry:
            self.registry.register(params)
        self.light_client.observe(
            params.chain_id, params.confirmation_depth, fork_aware=fork_aware
        )

    def ingest_header(self, header: BlockHeader) -> None:
        """Feed a peer-chain header to this chain's light client."""
        self.light_client.add_header(header)
        self._m_headers_in.inc()
        tracer = self.telemetry.tracer
        if tracer.enabled and tracer.has_watches():
            tracer.header_accepted(self.chain_id, header.chain_id, header.height)
        for listener in list(self._header_listeners):
            listener(header)
