"""Transaction execution against the world state.

One :class:`TransactionExecutor` per chain.  Every transaction runs
inside a journal snapshot: aborts (revert, out of gas, locked contract,
Move protocol violations) roll the state back exactly and yield a
failed receipt — the chain never crashes on bad transactions.

Gas categories: each transaction's charges land in a category chosen
from its kind (``move1`` / ``move2`` / ``execution``) or overridden by
``tx.meta["gas_category"]`` — how the Fig. 8/9 harness attributes the
``complete`` phase.
"""

from __future__ import annotations

from typing import Optional

from repro.chain.bytecode import execute_bytecode_call
from repro.chain.lightclient import LightClient
from repro.chain.tx import (
    BytecodeCallPayload,
    CallPayload,
    DeployBytecodePayload,
    DeployPayload,
    Move1Payload,
    Move2Payload,
    Transaction,
    TransferPayload,
)
from repro.core.move import apply_move1, apply_move2
from repro.core.registry import ChainRegistry
from repro.crypto.hashing import keccak
from repro.crypto.keys import Address, contract_address, create2_address
from repro.errors import (
    ContractLocked,
    ReadOnlyReplicaError,
    Revert,
    SpeculationUnsupported,
    TransactionAborted,
)
from repro.runtime.context import BlockEnv
from repro.runtime.registry import lookup_code
from repro.runtime.runtime import Runtime
from repro.statedb.receipts import Receipt
from repro.telemetry import Telemetry
from repro.telemetry.tracer import NULL_SPAN, pop_span, push_span
from repro.vm.gas import GasMeter
from repro.vm.machine import Machine

#: Per-transaction gas allowance; generous so only runaway transactions
#: (or deliberately tight tests) hit it.
DEFAULT_TX_GAS_LIMIT = 50_000_000


class TransactionExecutor:
    """Executes signed transactions for one chain."""

    #: where fees accumulate (stands in for the proposer/miner reward
    #: flow; one well-known sink address per chain)
    FEE_POOL = Address(b"\xfe" * 20)

    def __init__(
        self,
        runtime: Runtime,
        light_client: LightClient,
        registry: ChainRegistry,
        verify_signatures: bool = True,
        tx_gas_limit: int = DEFAULT_TX_GAS_LIMIT,
        gas_price: int = 0,
        telemetry: Optional[Telemetry] = None,
        chain_id: int = 0,
    ):
        self.runtime = runtime
        self.light_client = light_client
        self.registry = registry
        self.verify_signatures = verify_signatures
        self.tx_gas_limit = tx_gas_limit
        self.gas_price = gas_price
        self.machine = Machine(runtime.schedule)
        self.telemetry = telemetry if telemetry is not None else Telemetry.disabled()
        self.chain_id = chain_id
        metrics = self.telemetry.metrics
        self._m_txs_ok = metrics.counter("chain_txs_total", chain=chain_id, status="ok")
        self._m_txs_failed = metrics.counter(
            "chain_txs_total", chain=chain_id, status="failed"
        )
        self._m_tx_gas = metrics.histogram("chain_tx_gas", chain=chain_id)

    def _charge_fee(self, sender, gas_used: int) -> int:
        """Deduct the gas fee (EVM semantics: failed transactions pay
        too).  The deduction is clamped to the sender's balance; fees
        accrue to the chain's fee pool."""
        if not self.gas_price:
            return 0
        state = self.runtime.state
        fee = min(gas_used * self.gas_price, state.balance_of(sender))
        if fee:
            state.sub_balance(sender, fee)
            state.add_balance(self.FEE_POOL, fee)
        return fee

    def _category(self, tx: Transaction) -> str:
        override = tx.meta.get("gas_category")
        if override:
            return override
        if isinstance(tx.payload, Move1Payload):
            return "move1"
        if isinstance(tx.payload, Move2Payload):
            return "move2"
        return "execution"

    def execute(self, tx: Transaction, env: BlockEnv) -> Receipt:
        """Run one transaction; always returns a receipt.

        When the transaction carries a trace context (``tx.meta``), its
        execution becomes a ``tx.exec`` span of that trace and is made
        the *active* span, so Move-protocol internals (``VS`` / ``VP``
        / nonce / storage replay events) attach to it without plumbing.
        """
        span = self.telemetry.tracer.span_from_meta(
            "tx.exec",
            tx.meta,
            chain=self.chain_id,
            height=env.height,
            kind=type(tx.payload).__name__,
        )
        traced = span is not NULL_SPAN
        if traced:
            push_span(span)
        try:
            receipt = self._execute_inner(tx, env)
        finally:
            if traced:
                pop_span()
        self.record_receipt(receipt)
        if traced:
            if receipt.success:
                span.end(success=True, gas=receipt.gas_used)
            else:
                span.end(success=False, gas=receipt.gas_used, error=receipt.error)
        return receipt

    def record_receipt(self, receipt: Receipt) -> None:
        """Account one receipt in the executor's metrics.

        Split out of :meth:`execute` so the parallel block executor can
        defer metric updates to commit order — keeping counter and
        histogram contents identical to serial execution regardless of
        the order speculations finish in.
        """
        if receipt.success:
            self._m_txs_ok.inc()
        else:
            self._m_txs_failed.inc()
        self._m_tx_gas.observe(receipt.gas_used)

    def execute_speculative(self, tx: Transaction, env: BlockEnv, frame) -> Receipt:
        """Run one transaction optimistically inside ``frame``.

        All state effects are buffered on the frame (see
        :class:`~repro.statedb.state.SpeculationFrame`); nothing shared
        is mutated and no metrics are recorded — the parallel block
        executor validates the frame and either replays it at the
        transaction's commit position or discards it.  Raises
        :class:`~repro.errors.SpeculationUnsupported` when the
        transaction needs an operation the overlay cannot buffer.
        """
        state = self.runtime.state
        state.begin_speculation(frame)
        try:
            return self._execute_inner(tx, env)
        finally:
            state.end_speculation()

    def _execute_inner(self, tx: Transaction, env: BlockEnv) -> Receipt:
        state = self.runtime.state
        schedule = self.runtime.schedule
        meter = GasMeter(limit=self.tx_gas_limit, schedule=schedule)
        category = self._category(tx)
        ctx = self.runtime.make_context(tx.sender, env, meter, category)
        ctx.light_client = self.light_client  # enable the proof builtin
        snap = state.snapshot()
        try:
            if self.verify_signatures and not tx.verify():
                raise Revert("invalid transaction signature")
            meter.charge(schedule.tx_base, category)
            result = self._dispatch(tx, ctx)
            fee = self._charge_fee(tx.sender, meter.used)
            return Receipt(
                tx_id=tx.tx_id,
                success=True,
                gas_used=meter.used,
                return_value=result,
                logs=list(ctx.events),
                gas_by_category=dict(meter.by_category),
                fee_paid=fee,
            )
        except TransactionAborted as exc:
            state.revert(snap)
            # Failed transactions pay for the gas they burned (the fee
            # lands outside the reverted journal region).
            fee = self._charge_fee(tx.sender, meter.used)
            return Receipt(
                tx_id=tx.tx_id,
                success=False,
                gas_used=meter.used,
                error=f"{type(exc).__name__}: {exc}",
                gas_by_category=dict(meter.by_category),
                fee_paid=fee,
            )
        except SpeculationUnsupported:
            # Not a transaction fault: the optimistic overlay cannot
            # express this operation.  Unwind the (frame-local) journal
            # and let the parallel executor re-run the tx serially.
            state.revert(snap)
            raise
        except Exception as exc:  # noqa: BLE001 — contract-fault boundary
            # EVM semantics: *any* fault inside contract execution
            # (malformed arguments, a bug in contract code, ...) aborts
            # the transaction — a hostile transaction must never crash
            # the node.
            state.revert(snap)
            fee = self._charge_fee(tx.sender, meter.used)
            return Receipt(
                tx_id=tx.tx_id,
                success=False,
                gas_used=meter.used,
                error=f"ContractFault({type(exc).__name__}): {exc}",
                gas_by_category=dict(meter.by_category),
                fee_paid=fee,
            )

    def _dispatch(self, tx: Transaction, ctx) -> object:
        payload = tx.payload
        state = self.runtime.state

        if isinstance(payload, TransferPayload):
            if state.balance_of(tx.sender) < payload.amount:
                raise Revert("insufficient balance for transfer")
            state.sub_balance(tx.sender, payload.amount)
            state.add_balance(payload.to, payload.amount)
            return None

        if isinstance(payload, DeployPayload):
            cls = lookup_code(payload.code_hash)
            return self.runtime.deploy(
                ctx,
                cls,
                payload.args,
                sender=tx.sender,
                salt=payload.salt,
                value=payload.value,
            )

        if isinstance(payload, CallPayload):
            return self.runtime.call(
                ctx,
                payload.target,
                payload.method,
                payload.args,
                sender=tx.sender,
                value=payload.value,
            )

        if isinstance(payload, DeployBytecodePayload):
            code_hash = keccak(payload.code)
            ctx.charge(self.runtime.schedule.create, "create")
            schedule = self.runtime.schedule
            if not (schedule.code_deposit_dedup and state.has_code(code_hash)):
                ctx.charge(schedule.code_deposit(len(payload.code)), "code_deposit")
            if payload.salt is None:
                nonce = state.bump_nonce(tx.sender)
                address = contract_address(ctx.env.chain_id, tx.sender, nonce)
            else:
                address = create2_address(
                    ctx.env.chain_id, tx.sender, payload.salt, code_hash
                )
            state.create_contract(address, code_hash, payload.code)
            if payload.value:
                if state.balance_of(tx.sender) < payload.value:
                    raise Revert("insufficient balance for deployment value")
                state.sub_balance(tx.sender, payload.value)
                state.add_balance(address, payload.value)
            return address

        if isinstance(payload, BytecodeCallPayload):
            record = state.contract(payload.target)
            if record is None:
                raise Revert(f"no contract at {payload.target}")
            # Bytecode calls may always mutate, so the Move lock blocks
            # every call to a moved-away contract.
            if state.is_locked(payload.target):
                if state.is_mirror(payload.target):
                    raise ReadOnlyReplicaError(
                        f"contract {payload.target} is a read-only replica "
                        f"of chain {record.location}"
                    )
                raise ContractLocked(
                    f"contract {payload.target} moved to chain {record.location}"
                )
            ctx.charge(self.runtime.schedule.call)
            if payload.value:
                if state.balance_of(tx.sender) < payload.value:
                    raise Revert("insufficient balance for call value")
                state.sub_balance(tx.sender, payload.value)
                state.add_balance(payload.target, payload.value)
            result = execute_bytecode_call(
                state,
                self.machine,
                payload.target,
                tx.sender,
                payload.calldata,
                payload.value,
                ctx.env,
                ctx.meter,
                self._category(tx),
            )
            return result.return_data

        if isinstance(payload, Move1Payload):
            apply_move1(ctx, self.runtime, payload.contract, payload.target_chain, tx.sender)
            return None

        if isinstance(payload, Move2Payload):
            apply_move2(
                ctx,
                self.runtime,
                payload.bundle,
                self.light_client,
                self.registry,
                tx.sender,
            )
            return None

        raise Revert(f"unknown payload type {type(payload).__name__}")
