"""Light clients: header stores and the ``VS`` predicate.

Validators/miners of chains that interoperate maintain a light client of
each peer chain (paper Section IV-A): they hold only block headers —
hundreds of bytes, ~2 % of block bodies — and accept a state root ``m``
as trusted only when the header carrying it is at least ``p`` blocks
behind that chain's head.  ``p`` is per-observed-chain configuration
agreed by the interoperating chains (six for Ethereum's fork window,
two for Burrow).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.chain.block import BlockHeader
from repro.errors import StateError


class HeaderStore:
    """Headers of *one* observed chain, with confirmation tracking."""

    def __init__(self, chain_id: int, confirmation_depth: int):
        self.chain_id = chain_id
        self.confirmation_depth = confirmation_depth
        self._headers: Dict[int, BlockHeader] = {}
        self.head_height = -1
        #: conflicting headers seen (and rejected) at an occupied height
        self.equivocations = 0

    def add_header(self, header: BlockHeader) -> None:
        """Ingest a header (relayed or downloaded).

        Exactly-once is *not* assumed: re-delivering a known header is a
        no-op, and a *conflicting* header at an occupied height — two
        distinct headers at one height of a non-forking chain are
        equivocation evidence — is rejected (first-seen wins) and
        counted in :attr:`equivocations` instead of silently replacing
        the root that peers may already have verified proofs against.
        """
        if header.chain_id != self.chain_id:
            raise StateError(
                f"header of chain {header.chain_id} fed to store of {self.chain_id}"
            )
        existing = self._headers.get(header.height)
        if existing is not None and existing.hash() != header.hash():
            self.equivocations += 1
            return
        self._headers[header.height] = header
        self.head_height = max(self.head_height, header.height)

    def header_at(self, height: int) -> Optional[BlockHeader]:
        """The stored header at ``height``, if any."""
        return self._headers.get(height)

    def is_confirmed(self, height: int) -> bool:
        """Is the block at ``height`` at least ``p`` behind the head?"""
        return height + self.confirmation_depth <= self.head_height

    def trusted_state_root(self, height: int) -> Optional[bytes]:
        """The root ``m`` carried by the header at ``height`` — only if
        that header is known *and* sufficiently confirmed; else None.

        This is one half of ``VS(B, m)``; the caller compares the
        returned root with the one the proof claims.
        """
        header = self._headers.get(height)
        if header is None or not self.is_confirmed(height):
            return None
        return header.state_root


class ForkAwareHeaderStore(HeaderStore):
    """Header store that tracks competing branches of a forking chain.

    Permissionless chains fork momentarily (Section II); interoperating
    peers therefore wait ``p`` blocks before trusting a header
    (Section IV-A).  This store makes the mechanism concrete:

    * headers must link to a known parent (by hash) — detached headers
      are rejected;
    * competing headers at one height coexist as branches;
    * the **canonical** chain is the longest branch (first-seen wins a
      tie, like a node that mines on what it saw first);
    * ``trusted_state_root`` answers only for canonical, ``p``-deep
      headers — a root from an orphaned branch is never trusted, and a
      root that *was* canonical stops validating after a reorg;
    * a reorg that replaces a header which was already ``p``-confirmed
      breaks the protocol's safety assumption (a root peers were
      entitled to trust has been invalidated) — it is **detected** and
      counted in :attr:`deep_reorgs`, never silently absorbed, so
      operators and the chaos invariant checker can flag every Move2
      that may have built on the orphaned side.
    """

    def __init__(self, chain_id: int, confirmation_depth: int):
        super().__init__(chain_id, confirmation_depth)
        self._by_hash: Dict[bytes, BlockHeader] = {}
        self._tip: Optional[BlockHeader] = None
        self._canonical: Dict[int, bytes] = {}  # height -> canonical hash
        self.reorgs = 0
        #: reorgs that replaced an already-p-confirmed canonical header
        self.deep_reorgs = 0

    def add_header(self, header: BlockHeader) -> None:
        """Ingest a linked header; competing branches are tracked."""
        if header.chain_id != self.chain_id:
            raise StateError(
                f"header of chain {header.chain_id} fed to store of {self.chain_id}"
            )
        if header.height > 0 and header.parent_hash not in self._by_hash:
            raise StateError(
                f"detached header at height {header.height}: unknown parent"
            )
        digest = header.hash()
        self._by_hash[digest] = header
        self._headers[header.height] = header  # latest writer, superseded below
        if self._tip is None or header.height > self._tip.height:
            old_tip = self._tip
            old_head = self.head_height
            old_canonical = dict(self._canonical)
            self._tip = header
            self.head_height = header.height
            self._rebuild_canonical()
            if old_tip is not None and self._canonical.get(old_tip.height) != old_tip.hash():
                self.reorgs += 1
                if any(
                    self._canonical.get(height) != canonical_hash
                    and height + self.confirmation_depth <= old_head
                    for height, canonical_hash in old_canonical.items()
                ):
                    self.deep_reorgs += 1

    def _rebuild_canonical(self) -> None:
        self._canonical.clear()
        cursor = self._tip
        while cursor is not None:
            self._canonical[cursor.height] = cursor.hash()
            self._headers[cursor.height] = cursor
            if cursor.height == 0:
                break
            cursor = self._by_hash.get(cursor.parent_hash)

    def is_canonical(self, header: BlockHeader) -> bool:
        """Is this header on the current longest branch?"""
        return self._canonical.get(header.height) == header.hash()

    def trusted_state_root(self, height: int) -> Optional[bytes]:
        """The canonical, p-confirmed root at ``height`` (else None)."""
        canonical_hash = self._canonical.get(height)
        if canonical_hash is None or not self.is_confirmed(height):
            return None
        return self._by_hash[canonical_hash].state_root


class LightClient:
    """A node's collection of header stores, one per observed chain."""

    def __init__(self) -> None:
        self._stores: Dict[int, HeaderStore] = {}

    def observe(
        self, chain_id: int, confirmation_depth: int, fork_aware: bool = False
    ) -> HeaderStore:
        """Start (or fetch) the store for a peer chain.

        ``fork_aware=True`` builds a :class:`ForkAwareHeaderStore` —
        appropriate when the observed chain can fork (PoW peers).
        """
        store = self._stores.get(chain_id)
        if store is None:
            cls = ForkAwareHeaderStore if fork_aware else HeaderStore
            store = cls(chain_id, confirmation_depth)
            self._stores[chain_id] = store
        return store

    def store_for(self, chain_id: int) -> Optional[HeaderStore]:
        """The header store of an observed chain, or None."""
        return self._stores.get(chain_id)

    def add_header(self, header: BlockHeader) -> None:
        """Route a header to its chain's store (must be observed)."""
        store = self._stores.get(header.chain_id)
        if store is None:
            raise StateError(f"not observing chain {header.chain_id}")
        store.add_header(header)

    def valid_state_root(self, chain_id: int, height: int, claimed_root: bytes) -> bool:
        """``VS(B, m)``: is ``claimed_root`` the confirmed root of
        chain ``B`` at ``height``?"""
        store = self._stores.get(chain_id)
        if store is None:
            return False
        trusted = store.trusted_state_root(height)
        return trusted is not None and trusted == claimed_root
