"""Shared utilities for the figure-reproduction benchmarks.

Every benchmark prints the same rows/series the paper's figure reports
and also writes them to ``benchmarks/results/<name>.txt`` so the output
survives pytest's capture.  Set ``REPRO_BENCH_SCALE=full`` for
paper-scale populations (slower); the default ``small`` keeps each
benchmark in the tens of seconds while preserving every trend.
"""

from __future__ import annotations

import os
import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

SCALE = os.environ.get("REPRO_BENCH_SCALE", "small")


def full_scale() -> bool:
    return SCALE == "full"


def emit(name: str, text: str) -> None:
    """Print a figure's output and persist it under results/."""
    banner = f"\n===== {name} =====\n"
    print(banner + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def once(benchmark, fn):
    """Run a heavy simulation exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
