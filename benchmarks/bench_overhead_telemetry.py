"""Telemetry overhead: disabled tracing must be (nearly) free.

Runs the same fault-free SCoin chaos workload three ways:

* **baseline** — default telemetry (the implicit disabled bundle);
* **null** — an explicitly constructed ``NullSink`` tracer, i.e. the
  "telemetry wired but off" configuration every instrumented call site
  pays for;
* **enabled** — a ``MemorySink`` tracer recording every span, event,
  watch and metric;
* **monitor** — baseline telemetry plus the full health plane
  (``health=True``): probes, SLO evaluation and flight recording every
  5 simulated seconds.

Gates (the CI ``telemetry`` job runs this in smoke mode):

* the null configuration stays within **5 %** of baseline — the
  single-``enabled``-check fast path really is near-zero-cost;
* full tracing stays within **15 %** of baseline on the SCoin workload;
* the health monitor stays within **5 %** of baseline — read-only
  sampling on a 5 s cadence must never tax the workload it watches.

Wall-clock comparisons use best-of-N (minimum), the standard way to
suppress scheduler noise: the minimum is the run least disturbed by the
machine, and any real per-call overhead shows up in every repetition.
"""

from __future__ import annotations

import gc
import time

from bench_common import emit, full_scale, once

from repro.faults.chaos import run_chaos
from repro.faults.plan import FaultPlan
from repro.metrics.report import format_table
from repro.telemetry import MemorySink, NullSink, Telemetry, Tracer

SEED = 5


def _duration() -> float:
    # Long enough that the workload dominates setup even in smoke mode.
    return 3600.0 if full_scale() else 1200.0


def _repeats() -> int:
    # Shared runners are noisy; the minimum over many repetitions is
    # what converges on the true per-configuration cost.
    return 10 if full_scale() else 8


def _one_run(telemetry, health=False) -> float:
    duration = _duration()
    plan = FaultPlan(seed=SEED, duration=duration, events=())
    gc.collect()  # earlier runs' garbage must not bill this one
    start = time.perf_counter()
    report = run_chaos(
        SEED,
        duration=duration,
        workload="scoin",
        plan=plan,
        telemetry=telemetry,
        health=health,
    )
    elapsed = time.perf_counter() - start
    assert report.moves_completed > 0, "workload must actually move contracts"
    return elapsed


CONFIGS = (
    ("baseline", lambda: None, False),
    ("null", lambda: Telemetry(tracer=Tracer(sink=NullSink())), False),
    ("enabled", lambda: Telemetry(tracer=Tracer(sink=MemorySink())), False),
    ("monitor", lambda: None, True),
)


def _measure():
    # Interleave configurations round-robin so drift over the process's
    # lifetime (cache warmup, allocator growth) hits all three equally.
    best = {name: float("inf") for name, _, _ in CONFIGS}
    _one_run(None)  # warm-up, untimed
    for _ in range(_repeats()):
        for name, make_telemetry, health in CONFIGS:
            best[name] = min(best[name], _one_run(make_telemetry(), health))
    return best


def test_telemetry_overhead(benchmark):
    results = once(benchmark, _measure)
    base = results["baseline"]

    rows = [
        [config, round(seconds, 3), f"{seconds / base * 100:.1f}%"]
        for config, seconds in results.items()
    ]
    emit(
        "overhead_telemetry",
        format_table(["configuration", "best of N (s)", "vs baseline"], rows),
    )

    # A 20 ms absolute floor keeps sub-second smoke runs from failing on
    # scheduler noise alone; at full scale the ratio dominates.
    assert results["null"] <= max(base * 1.05, base + 0.02), (
        f"NullSink run {results['null']:.3f}s exceeds 5% over "
        f"baseline {base:.3f}s"
    )
    assert results["enabled"] <= max(base * 1.15, base + 0.02), (
        f"enabled-tracing run {results['enabled']:.3f}s exceeds 15% over "
        f"baseline {base:.3f}s"
    )
    assert results["monitor"] <= max(base * 1.05, base + 0.02), (
        f"health-monitored run {results['monitor']:.3f}s exceeds 5% over "
        f"baseline {base:.3f}s"
    )
