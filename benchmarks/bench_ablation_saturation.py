"""Ablation: a shard's saturation curve under open-loop load.

The paper's closed-loop clients self-throttle; offering load at a fixed
Poisson rate instead exposes the capacity knee directly.  A shard with
``max_block_txs = 130`` and ~5.4 s block cadence can absorb ≈24 tx/s:
below the knee achieved = offered and latency sits near half a block;
above it, achieved flattens at capacity and the backlog (and therefore
latency) grows without bound — the congestion that §IV-B says drives
users to move their contracts to underused shards.
"""

from __future__ import annotations

from bench_common import emit, once

from repro.metrics.report import format_table
from repro.sharding.cluster import ShardedCluster
from repro.workload.generators import OpenLoopTransferWorkload

BLOCK_CAPACITY = 130
#: capacity 130 txs / ~5.4 s commit cadence
CAPACITY_TPS = 24.0
OFFERED = (5.0, 15.0, 22.0, 35.0, 60.0)
DURATION = 400.0


def _sweep():
    out = {}
    for rate in OFFERED:
        cluster = ShardedCluster(num_shards=1, seed=91, max_block_txs=BLOCK_CAPACITY)
        workload = OpenLoopTransferWorkload(cluster, offered_rate=rate, seed=3)
        out[rate] = workload.run(DURATION, warmup=60.0)
    return out


def test_ablation_saturation_curve(benchmark):
    reports = once(benchmark, _sweep)

    rows = [
        [
            rate,
            round(report.achieved_rate, 1),
            round(report.mean_latency, 1),
            report.backlog_at_end,
        ]
        for rate, report in reports.items()
    ]
    emit(
        "ablation_saturation",
        format_table(
            ["offered (tx/s)", "achieved (tx/s)", "mean latency (s)", "backlog"], rows
        )
        + f"\n\ncapacity = {BLOCK_CAPACITY} txs / ~5.4 s blocks ≈ {CAPACITY_TPS} tx/s",
    )

    # Below the knee: achieved tracks offered, latency ~ block time.
    for rate in (5.0, 15.0):
        assert abs(reports[rate].achieved_rate - rate) < 0.15 * rate
        assert reports[rate].mean_latency < 8.0
        assert reports[rate].backlog_at_end < 40
    # Above the knee: achieved clamps at capacity...
    for rate in (35.0, 60.0):
        assert reports[rate].achieved_rate < CAPACITY_TPS * 1.1
    # ...latency and backlog blow up monotonically with overload.
    assert reports[60.0].backlog_at_end > reports[35.0].backlog_at_end > 200
    assert reports[60.0].mean_latency > reports[35.0].mean_latency > 3 * reports[15.0].mean_latency