"""Figure 8: latency of five inter-blockchain applications.

For SCoin, ScalableKitties and Store 1/10/100, time the four phases of
a cross-chain move in both directions between the Burrow-flavoured
chain (Tendermint, 5 s blocks, two-block proof wait) and the
Ethereum-flavoured chain (PoW, 15 s expected blocks, p = 6):

* **move1** — submission to inclusion at the source;
* **wait + proof** — until the Move1 block is provable to the target;
* **move2** — submission to inclusion at the target;
* **complete** — the application's completion transactions.

Paper shape: Burrow→Ethereum totals tens of seconds; in the
Ethereum→Burrow direction "to execute Move2 ... one is required to wait
for 6 Ethereum blocks that translates to approximately 90 seconds and
ends up dominating the overall time for every operation".
"""

from __future__ import annotations

import statistics

from bench_common import emit, full_scale, once

from repro.ibc.scenarios import (
    APPS,
    APP_LABELS,
    BURROW_ID,
    ETHEREUM_ID,
    IBCExperiment,
)
from repro.metrics.report import format_table
from repro.telemetry import Telemetry
from repro.telemetry.phases import trace_phases

DIRECTIONS = (
    ("Burrow -> Ethereum", BURROW_ID, ETHEREUM_ID),
    ("Ethereum -> Burrow", ETHEREUM_ID, BURROW_ID),
)


def _seeds():
    return range(5) if full_scale() else range(3)


def _run_one(app, label, src, dst, seed):
    """One traced run: (MovePhases, telemetry TracePhases of the
    measured move — the *last* finished trace; setup moves come first)."""
    telemetry = Telemetry.enabled()
    experiment = IBCExperiment(seed=seed, telemetry=telemetry)
    phases = experiment.run_app(app, src, dst)
    traces = trace_phases(telemetry.tracer.finished_spans())
    return phases, traces[-1]


def _run_all():
    results = {}
    for app in APPS:
        for label, src, dst in DIRECTIONS:
            runs = [_run_one(app, label, src, dst, seed) for seed in _seeds()]
            results[(app, label)] = runs
    return results


def _mean_phases(runs):
    return (
        statistics.mean(p.move1_time for p, _t in runs),
        statistics.mean(p.wait_proof_time for p, _t in runs),
        statistics.mean(p.move2_time for p, _t in runs),
        statistics.mean(p.complete_time for p, _t in runs),
    )


def _mean_trace_phase(runs, phase):
    return statistics.mean(t.phase(phase) for _p, t in runs)


def test_fig8_ibc_latency(benchmark):
    results = once(benchmark, _run_all)

    sections = []
    means = {}
    confirm_share = {}
    for label, _src, _dst in DIRECTIONS:
        rows = []
        for app in APPS:
            runs = results[(app, label)]
            move1, wait, move2, complete = _mean_phases(runs)
            means[(app, label)] = (move1, wait, move2, complete)
            # Telemetry splits the wait+proof column into its parts:
            # the p-block confirmation wait vs actual proof building.
            confirm = _mean_trace_phase(runs, "confirm.wait")
            proof = _mean_trace_phase(runs, "proof.build")
            confirm_share[(app, label)] = (confirm, proof, wait)
            rows.append(
                [
                    APP_LABELS[app],
                    round(move1, 1),
                    round(wait, 1),
                    round(confirm, 1),
                    round(proof, 2),
                    round(move2, 1),
                    round(complete, 1),
                    round(move1 + wait + move2 + complete, 1),
                ]
            )
        sections.append(f"--- Time from {label} ---")
        sections.append(
            format_table(
                [
                    "application",
                    "move1 (s)",
                    "wait+proof (s)",
                    "confirm (s)",
                    "proof (s)",
                    "move2 (s)",
                    "complete (s)",
                    "total (s)",
                ],
                rows,
            )
        )
        sections.append("")
    emit("fig8_ibc_latency", "\n".join(sections))

    # The traced phases must agree with the bridge's own bookkeeping:
    # confirm.wait + proof.build is exactly the wait+proof column.
    for (app, label), (confirm, proof, wait) in confirm_share.items():
        assert abs((confirm + proof) - wait) < 0.5, (app, label, confirm, proof, wait)

    for app in APPS:
        b2e = means[(app, "Burrow -> Ethereum")]
        e2b = means[(app, "Ethereum -> Burrow")]
        # Burrow->Ethereum: the proof wait is two 5-s Burrow blocks.
        assert 8.0 < b2e[1] < 16.0
        # Ethereum->Burrow: six ~15-s PoW blocks dominate everything.
        assert 60.0 < e2b[1] < 160.0
        assert e2b[1] > max(e2b[0], e2b[2], e2b[3])
        # Totals: tens of seconds vs roughly two minutes.
        assert sum(b2e) < sum(e2b)
    # Completion work ranks: kitties (2 txs) > scoin (1 tx) > stores (0).
    assert means[("kitties", "Burrow -> Ethereum")][3] > means[("scoin", "Burrow -> Ethereum")][3]
    assert means[("store1", "Burrow -> Ethereum")][3] == 0.0
