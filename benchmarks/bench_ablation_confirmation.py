"""Ablation: the confirmation depth ``p`` and block interval knobs.

Section IV-A introduces ``p`` — how many blocks behind the head a
transaction's block must be before peers accept proofs about it — as a
per-chain configured parameter.  This ablation sweeps it on the PoW
source (where it guards against forks) and sweeps the BFT chain's block
interval, showing the cost model behind the paper's choices:

* total move latency from a PoW source grows linearly in ``p`` at
  roughly one expected block interval per unit — p=6 is the fork-safety
  premium Fig. 8 pays;
* cross-chain latency from a Tendermint source scales linearly with
  the block interval, since every protocol phase is measured in blocks.
"""

from __future__ import annotations

import statistics

from bench_common import emit, full_scale, once

from repro.ibc.scenarios import BURROW_ID, ETHEREUM_ID, IBCExperiment
from repro.metrics.report import format_table

P_VALUES = (1, 3, 6, 12)
INTERVALS = (2.5, 5.0, 10.0)


def _seeds():
    return range(4) if full_scale() else range(3)


def _sweep_confirmation_depth():
    """Move a Store-10 from Ethereum to Burrow for several p values."""
    out = {}
    for p in P_VALUES:
        waits = []
        for seed in _seeds():
            experiment = IBCExperiment(
                seed=seed, ethereum_overrides={"confirmation_depth": p}
            )
            phases = experiment.run_app("store10", ETHEREUM_ID, BURROW_ID)
            waits.append((phases.wait_proof_time, phases.total_time))
        out[p] = (
            statistics.mean(w for w, _t in waits),
            statistics.mean(t for _w, t in waits),
        )
    return out


def _sweep_block_interval():
    """Move a Store-10 from Burrow to Ethereum for several intervals."""
    out = {}
    for interval in INTERVALS:
        totals = []
        for seed in _seeds():
            experiment = IBCExperiment(
                seed=seed, burrow_overrides={"block_interval": interval}
            )
            phases = experiment.run_app("store10", BURROW_ID, ETHEREUM_ID)
            totals.append((phases.move1_time + phases.wait_proof_time, phases.total_time))
        out[interval] = (
            statistics.mean(s for s, _t in totals),
            statistics.mean(t for _s, t in totals),
        )
    return out


def test_ablation_confirmation_depth_and_interval(benchmark):
    def run():
        return _sweep_confirmation_depth(), _sweep_block_interval()

    depth_sweep, interval_sweep = once(benchmark, run)

    depth_rows = [
        [p, round(wait, 1), round(total, 1)] for p, (wait, total) in depth_sweep.items()
    ]
    interval_rows = [
        [interval, round(source_side, 1), round(total, 1)]
        for interval, (source_side, total) in interval_sweep.items()
    ]
    emit(
        "ablation_confirmation",
        "--- p sweep (Ethereum source, 15 s expected blocks) ---\n"
        + format_table(["p (blocks)", "wait+proof (s)", "move total (s)"], depth_rows)
        + "\n\n--- Burrow block-interval sweep (Burrow source) ---\n"
        + format_table(
            ["interval (s)", "source phases (s)", "move total (s)"], interval_rows
        ),
    )

    # Wait grows monotonically in p, roughly ~15 s per extra block.
    waits = [depth_sweep[p][0] for p in P_VALUES]
    assert waits == sorted(waits)
    assert depth_sweep[12][0] > depth_sweep[1][0] + 5 * 15 * 0.5
    # Expectation of the p-block wait is ~p * 15 s (generous band for
    # exponential-variance on a few seeds).
    assert 0.4 * 6 * 15 < depth_sweep[6][0] < 2.0 * 6 * 15
    # Source-side phases scale with the Burrow interval.
    side = [interval_sweep[i][0] for i in INTERVALS]
    assert side == sorted(side)
    assert interval_sweep[10.0][0] > 2.5 * interval_sweep[2.5][0]
