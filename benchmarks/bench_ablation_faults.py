"""Ablation: shard throughput under fail-stop validators.

The paper runs fault-free performance experiments; this ablation
quantifies the robustness margin its BFT substrate carries: a shard
keeps processing the SCoin workload with up to f < n/3 crashed
validators (crashed proposers cost round-timeouts), and halts — rather
than forking — beyond the quorum bound.
"""

from __future__ import annotations

from bench_common import emit, once

from repro.chain.chain import Chain
from repro.chain.params import burrow_params
from repro.chain.tx import TransferPayload, sign_transaction
from repro.consensus.tendermint import TendermintEngine
from repro.crypto.keys import KeyPair
from repro.metrics.report import format_table
from repro.net.latency import LatencyModel
from repro.net.sim import Simulator
from repro.net.transport import Network

VALIDATORS = 10
DURATION = 400.0
CLIENTS = 30


def _run_with_crashes(crashed: int):
    sim = Simulator(seed=31 + crashed)
    net = Network(sim)
    chain = Chain(burrow_params(1), verify_signatures=False)
    regions = LatencyModel().assign_regions(VALIDATORS, sim.rng)
    engine = TendermintEngine(sim, net, chain, regions)
    for validator in engine.validators[:crashed]:
        engine.crash(validator)
    engine.start()

    users = [KeyPair.from_name(f"fault-user-{i}") for i in range(CLIENTS)]
    chain.fund({u.address: 10_000 for u in users})
    done = [0]

    def client_loop(user):
        tx = sign_transaction(user, TransferPayload(to=users[0].address, amount=1))

        def after(_receipt):
            done[0] += 1
            if sim.now < DURATION:
                client_loop(user)

        chain.wait_for(tx.tx_id, after)
        sim.schedule(0.2, lambda: chain.submit(tx))

    for user in users:
        client_loop(user)
    sim.run(until=DURATION)
    return {
        "blocks": chain.height,
        "txs": done[0],
        "tx_per_s": done[0] / DURATION,
        "rounds_advanced": engine.rounds_advanced,
    }


def test_ablation_validator_faults(benchmark):
    def run():
        return {crashed: _run_with_crashes(crashed) for crashed in (0, 1, 3, 4)}

    results = once(benchmark, run)

    rows = [
        [
            crashed,
            f"{VALIDATORS - crashed}/{VALIDATORS}",
            stats["blocks"],
            round(stats["tx_per_s"], 1),
            stats["rounds_advanced"],
        ]
        for crashed, stats in results.items()
    ]
    emit(
        "ablation_faults",
        format_table(
            ["crashed", "alive", "blocks", "tx/s", "round timeouts"], rows
        )
        + "\n\nquorum = 7/10: f<=3 keeps committing; f=4 halts (safety over liveness)",
    )

    # f <= 3: live, with modest throughput cost from proposer timeouts.
    assert results[0]["tx_per_s"] > 0
    for crashed in (1, 3):
        assert results[crashed]["blocks"] > 30
        assert results[crashed]["tx_per_s"] > 0.5 * results[0]["tx_per_s"]
    # Crashed proposers show up as round timeouts.
    assert results[3]["rounds_advanced"] > results[0]["rounds_advanced"]
    # f = 4 (quorum lost): the chain halts instead of forking.
    assert results[4]["blocks"] <= 1
    assert results[4]["txs"] == 0
