"""Ablation: shard throughput under fail-stop validators and chaos.

The paper runs fault-free performance experiments; this ablation
quantifies the robustness margin its BFT substrate carries: a shard
keeps processing the SCoin workload with up to f < n/3 crashed
validators (crashed proposers cost round-timeouts), and halts — rather
than forking — beyond the quorum bound.  All adversity is driven by the
:mod:`repro.faults` harness: each row is a :class:`FaultPlan` (the
f-sweep rows are fixed crash schedules; the ``chaos`` row is a seeded
mixed schedule of message drops/duplicates/delays, partitions, crashes
and proposer stalls) applied by a :class:`FaultInjector`.
"""

from __future__ import annotations

from bench_common import emit, once

from repro.chain.chain import Chain
from repro.chain.params import burrow_params
from repro.chain.tx import TransferPayload, sign_transaction
from repro.consensus.tendermint import TendermintEngine
from repro.crypto.keys import KeyPair
from repro.faults import FaultEvent, FaultInjector, FaultPlan
from repro.metrics.report import format_table
from repro.net.latency import LatencyModel
from repro.net.sim import Simulator
from repro.net.transport import Network

VALIDATORS = 10
DURATION = 400.0
CLIENTS = 30

#: fault kinds a single isolated shard can host (no header relays here)
SHARD_KINDS = ("drop", "duplicate", "delay", "partition", "crash", "stall_proposer")


def _crash_plan(crashed: int, engine: TendermintEngine) -> FaultPlan:
    """Permanent fail-stop of the first ``crashed`` validators."""
    events = tuple(
        FaultEvent(0.0, "crash", chain=1, target=validator, duration=2 * DURATION)
        for validator in engine.validators[:crashed]
    )
    return FaultPlan(seed=31 + crashed, duration=DURATION, events=events)


def _run_with_plan(seed: int, make_plan):
    sim = Simulator(seed=seed)
    net = Network(sim)
    chain = Chain(burrow_params(1), verify_signatures=False)
    regions = LatencyModel().assign_regions(VALIDATORS, sim.rng)
    engine = TendermintEngine(sim, net, chain, regions)
    injector = FaultInjector(sim, network=net, engines={1: engine}, seed=seed)
    plan = make_plan(engine)
    injector.apply(plan)
    engine.start()

    users = [KeyPair.from_name(f"fault-user-{i}") for i in range(CLIENTS)]
    chain.fund({u.address: 10_000 for u in users})
    done = [0]

    def client_loop(user):
        tx = sign_transaction(user, TransferPayload(to=users[0].address, amount=1))

        def after(_receipt):
            done[0] += 1
            if sim.now < DURATION:
                client_loop(user)

        chain.wait_for(tx.tx_id, after)
        sim.schedule(0.2, lambda: chain.submit(tx))

    for user in users:
        client_loop(user)
    sim.run(until=DURATION)
    return {
        "blocks": chain.height,
        "txs": done[0],
        "tx_per_s": done[0] / DURATION,
        "rounds_advanced": engine.rounds_advanced,
        "faults": sum(plan.counts().values()),
    }


def _run_with_crashes(crashed: int):
    return _run_with_plan(31 + crashed, lambda engine: _crash_plan(crashed, engine))


def _run_chaos_row():
    """A seeded mixed-fault schedule (every fault survivable)."""
    return _run_with_plan(
        31,
        lambda engine: FaultPlan.from_seed(
            31,
            duration=DURATION,
            validators={1: engine.validators},
            intensity=2.0,
            kinds=SHARD_KINDS,
        ),
    )


def test_ablation_validator_faults(benchmark):
    def run():
        results = {crashed: _run_with_crashes(crashed) for crashed in (0, 1, 3, 4)}
        results["chaos"] = _run_chaos_row()
        return results

    results = once(benchmark, run)

    def label(key):
        return "mixed" if key == "chaos" else key

    def alive(key):
        return "varies" if key == "chaos" else f"{VALIDATORS - key}/{VALIDATORS}"

    rows = [
        [
            label(key),
            alive(key),
            stats["faults"],
            stats["blocks"],
            round(stats["tx_per_s"], 1),
            stats["rounds_advanced"],
        ]
        for key, stats in results.items()
    ]
    emit(
        "ablation_faults",
        format_table(
            ["crashed", "alive", "faults", "blocks", "tx/s", "round timeouts"], rows
        )
        + "\n\nquorum = 7/10: f<=3 keeps committing; f=4 halts (safety over"
        " liveness).\nchaos = FaultPlan.from_seed(31): drops, duplicates,"
        " delays, partitions,\ncrashes and proposer stalls mixed — survivable"
        " by construction, so the\nshard must stay live (and does).",
    )

    # f <= 3: live, with modest throughput cost from proposer timeouts.
    assert results[0]["tx_per_s"] > 0
    for crashed in (1, 3):
        assert results[crashed]["blocks"] > 30
        assert results[crashed]["tx_per_s"] > 0.5 * results[0]["tx_per_s"]
    # Crashed proposers show up as round timeouts.
    assert results[3]["rounds_advanced"] > results[0]["rounds_advanced"]
    # f = 4 (quorum lost): the chain halts instead of forking.
    assert results[4]["blocks"] <= 1
    assert results[4]["txs"] == 0
    # The mixed chaos schedule is survivable by construction: the shard
    # keeps committing through it.
    assert results["chaos"]["faults"] >= 4
    assert results["chaos"]["blocks"] > 30
    assert results["chaos"]["tx_per_s"] > 0.25 * results[0]["tx_per_s"]
