"""Section VII-A's cross-shard transaction rates.

The paper reports that the ScalableKitties replay produced on average
5.86 %, 7.93 % and 7.85 % cross-blockchain transaction rates for 2, 4
and 8 shards respectively — flat-ish in the shard count because the
workload's locality (families breeding together) dominates over the
``1 - 1/s`` of random placement.
"""

from __future__ import annotations

from bench_common import emit, full_scale, once

from repro.metrics.report import format_table
from repro.sharding.cluster import ShardedCluster
from repro.traces.cryptokitties import TraceConfig, generate_trace
from repro.traces.replay import KittiesReplayer

PAPER_RATES = {2: 5.86, 4: 7.93, 8: 7.85}


def _trace_config() -> TraceConfig:
    if full_scale():
        return TraceConfig(n_ops=25_000, n_promo=2_000, n_users=900, seed=5)
    return TraceConfig(n_ops=12_000, n_promo=1_500, n_users=650, seed=5)


def _measure():
    trace = generate_trace(_trace_config())
    rates = {}
    for shards in (2, 4, 8):
        cluster = ShardedCluster(num_shards=shards, seed=shards, max_block_txs=130)
        replayer = KittiesReplayer(cluster, trace=list(trace), outstanding_limit=250)
        report = replayer.run(max_time=100_000)
        rates[shards] = report.cross_rate * 100
    return rates


def test_crossshard_rates_match_paper_band(benchmark):
    rates = once(benchmark, _measure)
    rows = [
        [shards, round(rates[shards], 2), PAPER_RATES[shards]]
        for shards in (2, 4, 8)
    ]
    emit(
        "table_crossshard_rates",
        format_table(["# shards", "measured cross-shard %", "paper cross-shard %"], rows),
    )
    # Same band and same flat-ish trend as the paper.
    for shards in (2, 4, 8):
        assert 3.0 < rates[shards] < 14.0
    assert rates[4] > rates[2]
    # 4 -> 8 shards is nearly flat (paper: 7.93 -> 7.85).
    assert rates[8] < rates[4] * 1.35
