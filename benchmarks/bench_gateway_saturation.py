"""Gateway saturation sweep: bounded admission under open-loop fleets.

Client fleets of increasing size push Poisson transfer load through the
:class:`~repro.gateway.SimNetTransport` at one gateway-fronted chain
(capacity ``max_block_txs / block_interval`` = 20 tx/s here).  Below
capacity the gateway is transparent — everything offered confirms and
nothing sheds.  Past capacity the admission queue hits its bound and
the overflow is *shed with machine-readable codes* while the queue's
high-water mark and the mempool stay bounded: overload costs requests,
never memory.

CI gates (the ``gateway`` job):

* a 64-client fleet under capacity confirms everything — no sheds;
* overloaded fleets shed only typed ``queue_full`` / ``rate_limited``;
* ``peak_queue_depth`` never exceeds the configured bound and the
  mempool never exceeds its flush headroom;
* the flagship 64-client run replays byte-identically from its seed.

Results: ``benchmarks/results/BENCH_gateway.json`` (+ a text table).
"""

from __future__ import annotations

import json

from bench_common import RESULTS_DIR, emit, full_scale, once

from repro.gateway import GatewayLimits
from repro.metrics.report import format_table
from repro.workload.gateway import GatewayWorkload

QUEUE_BOUND = 256
HEADROOM = 4
MAX_BLOCK_TXS = 100
BLOCK_INTERVAL = 5.0
CAPACITY_TPS = MAX_BLOCK_TXS / BLOCK_INTERVAL  # 20 tx/s

#: (clients, per-client rate) — under / at / far past capacity
FLEETS = ((16, 0.5), (64, 0.25), (64, 1.0), (128, 1.5))
DURATION = 300.0 if full_scale() else 90.0
SEED = 42


def _run(clients: int, rate: float, seed: int = SEED):
    workload = GatewayWorkload(
        clients=clients,
        rate_per_client=rate,
        seed=seed,
        limits=GatewayLimits(
            max_queue_depth=QUEUE_BOUND, mempool_headroom=HEADROOM
        ),
        block_interval=BLOCK_INTERVAL,
        max_block_txs=MAX_BLOCK_TXS,
    )
    report = workload.run(duration=DURATION, drain=60.0)
    mempool_at_end = len(workload.node.chain(1).mempool)
    return report, mempool_at_end


def _sweep():
    results = {"fleets": [], "determinism": {}}
    for clients, rate in FLEETS:
        report, mempool_at_end = _run(clients, rate)
        entry = report.to_dict()
        entry["rate_per_client"] = rate
        entry["mempool_at_end"] = mempool_at_end
        results["fleets"].append(entry)
    # Fixed-seed replay of the flagship 64-client fleet.
    first, _ = _run(64, 1.0)
    second, _ = _run(64, 1.0)
    results["determinism"] = {
        "seed": SEED,
        "final_root": first.final_root,
        "replay_identical": first.to_dict() == second.to_dict(),
    }
    return results


def test_gateway_saturation(benchmark):
    results = once(benchmark, _sweep)

    rows = [
        [
            entry["clients"],
            f"{entry['offered_rate']:.0f}",
            entry["confirmed"],
            f"{entry['throughput']:.1f}",
            f"{entry['shed_rate'] * 100:.1f}%",
            ",".join(sorted(entry["shed"])) or "-",
            f"{entry['peak_queue_depth']}/{QUEUE_BOUND}",
            entry["mempool_at_end"],
        ]
        for entry in results["fleets"]
    ]
    table = format_table(
        [
            "clients",
            "offered/s",
            "confirmed",
            "tx/s",
            "shed",
            "codes",
            "peak q",
            "mempool",
        ],
        rows,
    )
    table += (
        f"\ncapacity = {MAX_BLOCK_TXS} txs / {BLOCK_INTERVAL:.0f} s blocks"
        f" = {CAPACITY_TPS:.0f} tx/s; queue bound {QUEUE_BOUND},"
        f" mempool headroom {HEADROOM} blocks\n"
        f"fixed-seed replay identical: {results['determinism']['replay_identical']}"
        f" (root {results['determinism']['final_root'][:16]}…)"
    )
    emit("gateway_saturation", table)

    results["gate"] = {
        "queue_bound": QUEUE_BOUND,
        "mempool_bound": HEADROOM * MAX_BLOCK_TXS,
        "capacity_tps": CAPACITY_TPS,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_gateway.json").write_text(
        json.dumps(results, indent=2, sort_keys=True) + "\n"
    )

    by_fleet = {
        (entry["clients"], entry["rate_per_client"]): entry
        for entry in results["fleets"]
    }
    # Below capacity the gateway is transparent: no sheds, everything
    # offered confirms — including the 64-client acceptance fleet.
    for key in ((16, 0.5), (64, 0.25)):
        entry = by_fleet[key]
        assert entry["shed"] == {}, entry
        assert entry["confirmed"] == entry["submitted"]
    # Past capacity: overload is shed with typed codes only, and the
    # confirmed rate still tracks chain capacity.
    for key in ((64, 1.0), (128, 1.5)):
        entry = by_fleet[key]
        assert entry["shed_rate"] > 0.2
        assert set(entry["shed"]) <= {"queue_full", "rate_limited"}
        assert entry["throughput"] > CAPACITY_TPS * 0.8
    # Boundedness: queue high-water mark and mempool never exceed their
    # configured limits, however hard the fleet pushes.
    for entry in results["fleets"]:
        assert entry["peak_queue_depth"] <= QUEUE_BOUND
        assert entry["mempool_at_end"] <= HEADROOM * MAX_BLOCK_TXS
        assert entry["unresolved"] == 0
    assert results["determinism"]["replay_identical"]
