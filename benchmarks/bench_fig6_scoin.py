"""Figure 6: SCoin throughput vs. shard count and cross-shard rate.

The paper runs 250 closed-loop clients per shard and plots aggregate
throughput for 1/2/4/8 shards at cross-shard rates of 0/1/5/10/30 %:
throughput grows (close to) linearly with shards at every rate, and
degrades as the cross-shard rate rises, because each cross-shard
operation spends five block times instead of one.

The default scale uses 40 clients per shard (REPRO_BENCH_SCALE=full for
the paper's 250); the closed-loop law throughput ≈ clients / latency
means absolute numbers scale with the client count while every trend is
preserved.
"""

from __future__ import annotations

from bench_common import emit, full_scale, once

from repro.metrics.report import format_table
from repro.sharding.cluster import ShardedCluster
from repro.workload.clients import ScoinWorkload

CROSS_RATES = (0.0, 0.01, 0.05, 0.10, 0.30)
SHARD_COUNTS = (1, 2, 4, 8)


def _params():
    if full_scale():
        return dict(clients=250, duration=600.0, warmup=80.0)
    return dict(clients=40, duration=300.0, warmup=60.0)


def _run_grid():
    params = _params()
    results = {}
    # The one-shard run is the reference shown at every rate.
    cluster = ShardedCluster(num_shards=1, seed=100)
    workload = ScoinWorkload(cluster, clients_per_shard=params["clients"], cross_rate=0.0, seed=7)
    results[(1, 0.0)] = workload.run(params["duration"], warmup=params["warmup"])
    for shards in SHARD_COUNTS[1:]:
        for rate in CROSS_RATES:
            cluster = ShardedCluster(num_shards=shards, seed=100 + shards)
            workload = ScoinWorkload(
                cluster, clients_per_shard=params["clients"], cross_rate=rate, seed=7
            )
            results[(shards, rate)] = workload.run(params["duration"], warmup=params["warmup"])
    return results


def test_fig6_scoin_throughput(benchmark):
    results = once(benchmark, _run_grid)

    single = results[(1, 0.0)].ops_per_second
    rows = []
    for rate in CROSS_RATES:
        row = [f"{rate * 100:.0f}%", round(single, 1)]
        for shards in SHARD_COUNTS[1:]:
            row.append(round(results[(shards, rate)].ops_per_second, 1))
        rows.append(row)
    table = format_table(
        ["cross-shard", "1 shard (ref)", "2 shards", "4 shards", "8 shards"], rows
    )
    note = (
        f"\nclients/shard = {_params()['clients']} "
        f"(paper: 250; closed-loop throughput scales with the client count)"
    )
    emit("fig6_scoin", table + note)

    # Oracle mode: no conflicts anywhere.
    assert all(r.failures == 0 for r in results.values())
    # Throughput grows with shard count at every cross-shard rate.
    for rate in CROSS_RATES:
        assert (
            results[(8, rate)].ops_per_second
            > results[(4, rate)].ops_per_second
            > results[(2, rate)].ops_per_second
        )
    # At moderate rates sharding beats the single-shard reference; at
    # 30 % cross the 2-shard bar sits at/below the reference — exactly
    # the paper's plot, where cross-shard work eats the added capacity.
    for rate in (0.0, 0.01, 0.05, 0.10):
        assert results[(2, rate)].ops_per_second > single * 0.9
    assert results[(2, 0.30)].ops_per_second < single * 1.2
    # ...and degrades as the cross-shard rate rises (paper's key trend).
    for shards in (2, 4, 8):
        assert (
            results[(shards, 0.0)].ops_per_second
            > results[(shards, 0.10)].ops_per_second
            > results[(shards, 0.30)].ops_per_second
        )
    # The observed cross-shard mix matches the configured rate.
    for shards in (2, 4, 8):
        assert abs(results[(shards, 0.10)].observed_cross_rate - 0.10) < 0.05
