"""Ablation: optimistic parallel block execution vs the serial loop.

Sweeps the block executor across 1/2/4/8 workers over two SCoin
workloads on a single Burrow-flavoured chain:

* **conflict-light** — every transaction is a token transfer between a
  *disjoint* pair of per-user SAccount contracts, so the scheduler
  packs whole blocks into single waves;
* **conflict-heavy** — every transaction pays into one hot account, so
  the conflict chain serializes the block and parallelism cannot help
  (the honest lower bound).

Every run's receipts and final state root are asserted identical to
the serial loop — the ablation measures *time*, never behaviour.

Timing is reported two ways (see ``docs/PERFORMANCE.md``):
``measured`` is real wall-clock, which on this single-core/GIL host
cannot show concurrency; ``modeled`` assigns each wave's measured
per-transaction costs round-robin to W ideal lanes and charges the
longest lane plus all sequential work (scheduling, validation, ordered
commit, barriers).  The CI gate is on the modeled conflict-light
speedup at 4 workers.

Results: ``benchmarks/results/BENCH_parallelism.json`` (+ a text
table), including the keccak-memo micro-benchmark satellite note.
"""

from __future__ import annotations

import json
import os
import time

from bench_common import RESULTS_DIR, emit, full_scale, once

from repro.apps.scoin import SCoin
from repro.chain.chain import Chain
from repro.chain.params import burrow_params
from repro.chain.tx import CallPayload, DeployPayload, sign_transaction
from repro.crypto.keys import KeyPair
from repro.metrics.report import format_table
from repro.parallel.executor import ParallelBlockReport

WORKER_SWEEP = (1, 2, 4, 8)
#: CI gate: modeled conflict-light speedup at 4 workers must beat this
MIN_SPEEDUP_4W = 1.5

CPU_COUNT = os.cpu_count() or 1
#: Measured wall-clock gate for the process backend at 4 workers.
#: Only meaningful when the host actually has cores to run them on:
#: >=2x locally, relaxed to >=1.5x on shared CI runners.  On a
#: single-core host a measured multi-process speedup is physically
#: impossible, so the gate degrades to a bounded-overhead assertion
#: (process shipping must not blow up wall-clock) while the modeled
#: gate above keeps quantifying the concurrency honestly.
MEASURED_GATE_4W = (
    (1.5 if os.environ.get("CI") else 2.0) if CPU_COUNT >= 4 else None
)
#: Single-core fallback: process@4 wall-clock must stay within this
#: factor of the serial loop (pickling + IPC + snapshot overhead).
MAX_PROCESS_OVERHEAD_1CORE = 10.0

if full_scale():
    USERS, BLOCKS = 64, 8
else:
    USERS, BLOCKS = 32, 4

KEYPAIRS = [KeyPair.from_name(f"ablation-par-{i}") for i in range(USERS)]


def _setup_chain(workers: int, backend: str = "thread"):
    """Chain + SCoin + one funded SAccount per user."""
    chain = Chain(
        burrow_params(1, executor_workers=workers, executor_backend=backend),
        verify_signatures=True,
    )
    chain.fund({kp.address: 10**9 for kp in KEYPAIRS})
    deploy = sign_transaction(KEYPAIRS[0], DeployPayload(code_hash=SCoin.CODE_HASH), nonce=1)
    chain.submit(deploy)
    chain.produce_block(timestamp=1.0)
    token = chain.receipts[deploy.tx_id].return_value
    creates = [
        sign_transaction(kp, CallPayload(token, "new_account_for", (kp.address,)), nonce=10 + i)
        for i, kp in enumerate(KEYPAIRS)
    ]
    for tx in creates:
        chain.submit(tx)
    chain.produce_block(timestamp=2.0)
    accounts = [chain.receipts[tx.tx_id].return_value[0] for tx in creates]
    mints = [
        sign_transaction(KEYPAIRS[0], CallPayload(token, "mint_to", (a, 10_000)), nonce=100 + i)
        for i, a in enumerate(accounts)
    ]
    for tx in mints:
        chain.submit(tx)
    chain.produce_block(timestamp=3.0)
    return chain, accounts


def _workload_txs(accounts, conflict: str):
    """The benchmark blocks: one transaction per user per block."""
    blocks = []
    nonce = 1000
    for block_index in range(BLOCKS):
        txs = []
        if conflict == "light":
            # Disjoint pairs, rotated per block so every account both
            # debits and credits across the run.
            for pair in range(USERS // 2):
                src = (2 * pair + block_index) % USERS
                dst = (2 * pair + 1 + block_index) % USERS
                if src == dst:
                    continue
                txs.append(
                    sign_transaction(
                        KEYPAIRS[src],
                        CallPayload(accounts[src], "transfer_tokens", (accounts[dst], 1)),
                        nonce=nonce,
                    )
                )
                nonce += 1
        else:
            # Everyone pays the same hot account: a full conflict chain.
            for src in range(1, USERS):
                txs.append(
                    sign_transaction(
                        KEYPAIRS[src],
                        CallPayload(accounts[src], "transfer_tokens", (accounts[0], 1)),
                        nonce=nonce,
                    )
                )
                nonce += 1
        blocks.append(txs)
    return blocks


def _run(workers: int, conflict: str, backend: str = "thread"):
    """Execute the workload; returns (root, receipt digest, report)."""
    chain, accounts = _setup_chain(workers, backend)
    blocks = _workload_txs(accounts, conflict)
    aggregate = ParallelBlockReport(workers=max(1, workers))
    timestamp = 4.0
    wall_start = time.perf_counter()
    for txs in blocks:
        for tx in txs:
            chain.submit(tx)
        chain.produce_block(timestamp=timestamp)
        timestamp += 5.0
        if chain.last_parallel_report is not None:
            aggregate.absorb(chain.last_parallel_report)
            chain.last_parallel_report = None
    wall = time.perf_counter() - wall_start
    digest = tuple(
        (chain.receipts[tx.tx_id].success, chain.receipts[tx.tx_id].gas_used)
        for txs in blocks
        for tx in txs
    )
    assert all(ok for ok, _gas in digest), "benchmark workload must not abort"
    root = chain.state.committed_root
    chain.close()
    return root, digest, aggregate, wall


def _keccak_memo_note():
    """Satellite micro-benchmark: memoized vs direct small-input hashing."""
    from repro.crypto.hashing import keccak, keccak_memo_info

    payloads = [b"slot-key-derivation-%04d" % (i % 64) for i in range(20_000)]
    keccak(b"warm")  # ensure the table exists
    before = keccak_memo_info()
    start = time.perf_counter()
    for payload in payloads:
        keccak(payload)
    hot = time.perf_counter() - start
    after = keccak_memo_info()

    import hashlib

    start = time.perf_counter()
    for payload in payloads:
        hashlib.sha3_256(payload).digest()
    cold = time.perf_counter() - start
    return {
        "repeated_small_hashes": len(payloads),
        "memoized_seconds": round(hot, 6),
        "direct_seconds": round(cold, 6),
        "speedup": round(cold / hot, 2) if hot > 0 else None,
        "cache_hits_gained": after.hits - before.hits,
    }


def _sweep():
    results = {"workloads": {}, "root_identity": True, "cpu_count": CPU_COUNT}
    light_baseline = None
    for conflict in ("light", "heavy"):
        serial_root, serial_digest, _rep, serial_wall = _run(0, conflict)
        if conflict == "light":
            light_baseline = (serial_root, serial_digest, serial_wall)
        per_worker = {}
        for workers in WORKER_SWEEP:
            root, digest, report, wall = _run(workers, conflict)
            assert root == serial_root, f"{conflict}@{workers}w: state root diverged"
            assert digest == serial_digest, f"{conflict}@{workers}w: receipts diverged"
            per_worker[workers] = {
                "backend": "thread",
                "txs": report.tx_count,
                "waves": report.wave_count,
                "barriers": report.barrier_count,
                "max_wave_size": report.max_wave_size,
                "reexecuted": report.reexecuted,
                "unsupported": report.unsupported,
                "measured_seconds": round(wall, 4),
                "measured_speedup": round(serial_wall / wall, 3) if wall > 0 else None,
                "modeled_seconds": round(report.modeled_seconds(workers), 4),
                "modeled_serial_seconds": round(report.modeled_serial_seconds(), 4),
                "modeled_speedup": round(report.modeled_speedup(workers), 3),
            }
        results["workloads"][f"conflict_{conflict}"] = {
            "serial_measured_seconds": round(serial_wall, 4),
            "workers": per_worker,
        }

    # Process backend, conflict-light only: the measured wall-clock
    # lane of the ablation (threads cannot beat the GIL; processes can
    # when the host has cores).
    serial_root, serial_digest, serial_wall = light_baseline
    process_workers = {}
    for workers in (2, 4):
        root, digest, report, wall = _run(workers, "light", backend="process")
        assert root == serial_root, f"process@{workers}w: state root diverged"
        assert digest == serial_digest, f"process@{workers}w: receipts diverged"
        process_workers[workers] = {
            "backend": "process",
            "txs": report.tx_count,
            "waves": report.wave_count,
            "max_wave_size": report.max_wave_size,
            "reexecuted": report.reexecuted,
            "unsupported": report.unsupported,
            "measured_seconds": round(wall, 4),
            "measured_speedup": round(serial_wall / wall, 3) if wall > 0 else None,
            "modeled_seconds": round(report.modeled_seconds(workers), 4),
            "modeled_speedup": round(report.modeled_speedup(workers), 3),
        }
    results["process_backend"] = {
        "workload": "conflict_light",
        "serial_measured_seconds": round(serial_wall, 4),
        "workers": process_workers,
    }
    results["keccak_memo"] = _keccak_memo_note()
    return results


def test_ablation_parallelism(benchmark):
    results = once(benchmark, _sweep)

    rows = []
    for workload, data in results["workloads"].items():
        for workers, stats in data["workers"].items():
            rows.append(
                [
                    workload,
                    stats["backend"],
                    workers,
                    stats["txs"],
                    stats["waves"],
                    stats["max_wave_size"],
                    stats["reexecuted"],
                    stats["measured_seconds"],
                    stats["modeled_seconds"],
                    f"{stats['modeled_speedup']:.2f}x",
                ]
            )
    for workers, stats in results["process_backend"]["workers"].items():
        rows.append(
            [
                "conflict_light",
                stats["backend"],
                workers,
                stats["txs"],
                stats["waves"],
                stats["max_wave_size"],
                stats["reexecuted"],
                stats["measured_seconds"],
                stats["modeled_seconds"],
                f"{stats['measured_speedup']:.2f}x measured",
            ]
        )
    table = format_table(
        ["workload", "backend", "workers", "txs", "waves", "max wave",
         "re-exec", "measured s", "modeled s", "speedup"],
        rows,
    )
    memo = results["keccak_memo"]
    table += (
        f"\nkeccak memo: {memo['repeated_small_hashes']} repeated small hashes, "
        f"{memo['memoized_seconds']}s memoized vs {memo['direct_seconds']}s direct "
        f"({memo['speedup']}x)\n"
        "determinism: receipts + state roots identical to serial at every worker count"
    )
    emit("ablation_parallelism", table)

    light = results["workloads"]["conflict_light"]["workers"]
    heavy = results["workloads"]["conflict_heavy"]["workers"]
    process = results["process_backend"]["workers"]
    serial_wall = results["process_backend"]["serial_measured_seconds"]

    results["gate"] = {
        "min_modeled_speedup_4w_conflict_light": MIN_SPEEDUP_4W,
        "achieved": light[4]["modeled_speedup"],
        "measured": {
            "cpu_count": CPU_COUNT,
            "min_measured_speedup_4w_process": MEASURED_GATE_4W,
            "achieved": process[4]["measured_speedup"],
            "single_core_max_overhead": (
                MAX_PROCESS_OVERHEAD_1CORE if MEASURED_GATE_4W is None else None
            ),
        },
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_parallelism.json").write_text(
        json.dumps(results, indent=2, sort_keys=True) + "\n"
    )

    # CI gates: the conflict-light workload must parallelize, the
    # hot-account workload must honestly not (it serializes).
    assert light[4]["modeled_speedup"] >= MIN_SPEEDUP_4W
    assert light[4]["modeled_speedup"] >= light[2]["modeled_speedup"] * 0.9
    assert heavy[4]["modeled_speedup"] < 1.3
    assert heavy[4]["max_wave_size"] == 1
    # Measured wall-clock gate for the process backend (adaptive: a
    # single-core host cannot show a multi-process speedup, so it is
    # held to bounded shipping overhead + the modeled gate instead).
    if MEASURED_GATE_4W is not None:
        assert process[4]["measured_speedup"] >= MEASURED_GATE_4W
    else:
        assert (
            process[4]["measured_seconds"]
            <= serial_wall * MAX_PROCESS_OVERHEAD_1CORE
        )
    # Memoization must not be slower than direct hashing on hot inputs.
    assert memo["speedup"] is None or memo["speedup"] > 1.0
