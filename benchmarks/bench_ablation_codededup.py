"""Ablation: the code-deposit deduplication the paper points out.

Section VIII: "for SCoin and ScalableKitties the gas paid for the code
creation corresponds to around 70% of the total gas cost.  We note that
it is possible to reduce significantly the Ethereum contract creation
costs if the contract code is already in the blockchain."

This ablation implements and quantifies exactly that: the same
Burrow→Ethereum move scenarios under the paper's charge-every-creation
policy versus a deduplicating one (``GasSchedule.code_deposit_dedup``).
In both SCoin and ScalableKitties the scenario's setup already placed
identical code on the target chain (the destination account / cat),
so the measured move re-creates known code.
"""

from __future__ import annotations

import dataclasses

from bench_common import emit, once

from repro.ibc.costs import gas_to_usd
from repro.ibc.scenarios import BURROW_ID, ETHEREUM_ID, IBCExperiment
from repro.metrics.report import format_table
from repro.vm.gas import ETHEREUM_SCHEDULE

DEDUP_SCHEDULE = dataclasses.replace(ETHEREUM_SCHEDULE, code_deposit_dedup=True)


def _run_both():
    results = {}
    for label, overrides in (
        ("charge every creation (paper)", {}),
        ("dedup known code (paper's suggestion)", {"gas_schedule": DEDUP_SCHEDULE}),
    ):
        for app in ("scoin", "kitties"):
            experiment = IBCExperiment(seed=1, ethereum_overrides=overrides)
            phases = experiment.run_app(app, BURROW_ID, ETHEREUM_ID)
            results[(label, app)] = phases.gas
    return results


def test_ablation_code_deposit_dedup(benchmark):
    results = once(benchmark, _run_both)

    rows = []
    for (label, app), gas in results.items():
        total = sum(gas.values())
        rows.append(
            [
                app,
                label,
                gas.get("create", 0),
                gas.get("complete", 0),
                total,
                round(gas_to_usd(total), 2),
            ]
        )
    emit(
        "ablation_codededup",
        format_table(
            ["app", "policy", "create gas", "complete gas", "total gas", "price ($)"],
            rows,
        ),
    )

    paper = "charge every creation (paper)"
    dedup = "dedup known code (paper's suggestion)"
    for app in ("scoin", "kitties"):
        full_create = results[(paper, app)]["create"]
        dedup_create = results[(dedup, app)]["create"]
        # "reduce significantly": the deposit disappears, only the bare
        # CREATE remains.
        assert dedup_create < 0.15 * full_create
        assert sum(results[(dedup, app)].values()) < 0.6 * sum(
            results[(paper, app)].values()
        )
    # ScalableKitties saves twice: the move's recreation AND giveBirth
    # (both deposits sit in the 'create' bucket, Fig. 9's hatched-bar
    # convention): only the two bare CREATEs remain.
    assert results[(dedup, "kitties")]["create"] == 2 * 32_000
    # Application logic ('complete' minus creation) is untouched.
    assert results[(dedup, "kitties")]["complete"] == results[(paper, "kitties")]["complete"]
