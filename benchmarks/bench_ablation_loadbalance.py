"""Ablation: decentralized load balancing via contract moves (§IV-B/§X).

The paper's conclusion names "decentralized load balancing smart
contracts for sharded blockchains" as an application the Move primitive
opens up.  This benchmark quantifies it: a deliberately skewed
deployment (every account on shard 0 of a 4-shard cluster, shard 0
saturated) is measured, then every client applies the
:class:`~repro.sharding.balancer.LoadBalancingPolicy` — computed purely
from the public block stream — and moves its own account accordingly;
the same workload is measured again.

Expected: aggregate throughput recovers by well over 1.5× and
single-shard latency drops back toward one block time, because the
hot shard's queueing delay disappears.
"""

from __future__ import annotations

from bench_common import emit, full_scale, once

from repro.metrics.report import format_table
from repro.sharding.balancer import LoadBalancingPolicy, ShardLoadMonitor
from repro.sharding.cluster import ShardedCluster
from repro.workload.clients import ScoinWorkload

SHARDS = 4
#: low per-block capacity so the skewed shard actually saturates
BLOCK_CAPACITY = 40


def _params():
    if full_scale():
        return dict(clients=60, duration=400.0)
    return dict(clients=30, duration=300.0)


def _run_experiment():
    params = _params()
    cluster = ShardedCluster(
        num_shards=SHARDS, seed=77, max_block_txs=BLOCK_CAPACITY
    )
    workload = ScoinWorkload(
        cluster,
        clients_per_shard=params["clients"],
        cross_rate=0.0,
        seed=5,
        placement="home0",  # skew: everyone on shard 0
    )
    monitor = ShardLoadMonitor(cluster.shards, window_blocks=8)
    before = workload.run(params["duration"], warmup=60.0)
    util_before = monitor.utilizations()

    # Every client runs the same public policy and moves itself.
    policy = LoadBalancingPolicy(monitor, hot_threshold=0.8, min_gap=0.3)
    pending = [0]
    for index, client in enumerate(workload.clients):
        target = policy.suggest_move(client.shard, client.keypair.address)
        if target is not None:
            pending[0] += 1
            workload.relocate(index, target, lambda _ph: pending.__setitem__(0, pending[0] - 1))
    moved = pending[0]
    while pending[0] > 0:
        cluster.sim.run(until=cluster.sim.now + 10.0)

    after = workload.measure_again(params["duration"], warmup=30.0)
    util_after = monitor.utilizations()
    return before, after, util_before, util_after, moved


def test_ablation_load_balancing(benchmark):
    before, after, util_before, util_after, moved = once(benchmark, _run_experiment)

    rows = [
        [
            "skewed (all on shard 0)",
            round(before.ops_per_second, 1),
            round(before.latency.mean("single-shard"), 1),
            " ".join(f"{u:.2f}" for u in util_before),
        ],
        [
            f"after rebalancing ({moved} accounts moved)",
            round(after.ops_per_second, 1),
            round(after.latency.mean("single-shard"), 1),
            " ".join(f"{u:.2f}" for u in util_after),
        ],
    ]
    emit(
        "ablation_loadbalance",
        format_table(
            ["deployment", "ops/s", "mean latency (s)", "per-shard utilization"], rows
        ),
    )

    total_clients = SHARDS * _params()["clients"]
    # The skewed run saturates shard 0...
    assert util_before[0] > 0.8
    assert max(util_before[1:]) < 0.3
    # ...rebalancing moves roughly the excess fraction, not everyone
    # (the stay-probability rule prevents abandoning the hot shard)...
    assert 0.4 * total_clients < moved < 0.95 * total_clients
    # ...and recovers throughput and latency.
    assert after.ops_per_second > 1.5 * before.ops_per_second
    assert after.latency.mean("single-shard") < before.latency.mean("single-shard")
    # Load is visibly more even afterwards.
    assert max(util_after) - min(util_after) < max(util_before) - min(util_before)
