"""Figure 5: ScalableKitties trace replay throughput vs. shard count.

Left plot — average transactions per second for 1/2/4/8 shards: the
paper reports a nearly linear increase except at eight shards, where
the dependency DAG runs out of ready transactions.

Right plot — aggregated throughput over time for the 8-shard run, with
dashed marks at the moment each shard's outstanding-transaction window
could no longer be kept full ("Limit reached").
"""

from __future__ import annotations

from bench_common import emit, full_scale, once

from repro.metrics.report import format_series, format_table
from repro.sharding.cluster import ShardedCluster
from repro.traces.cryptokitties import TraceConfig, generate_trace
from repro.traces.replay import KittiesReplayer

SHARD_COUNTS = (1, 2, 4, 8)
#: per-shard effective block capacity (the paper's Burrow deployment
#: commits on the order of 130 transactions per 5 s block)
BLOCK_CAPACITY = 130
OUTSTANDING = 250


def _trace_config() -> TraceConfig:
    if full_scale():
        return TraceConfig(n_ops=25_000, n_promo=2_000, n_users=900, seed=5)
    return TraceConfig(n_ops=12_000, n_promo=1_500, n_users=650, seed=5)


def _replay_all():
    trace = generate_trace(_trace_config())
    results = {}
    for shards in SHARD_COUNTS:
        cluster = ShardedCluster(num_shards=shards, seed=shards, max_block_txs=BLOCK_CAPACITY)
        replayer = KittiesReplayer(cluster, trace=list(trace), outstanding_limit=OUTSTANDING)
        results[shards] = replayer.run(max_time=100_000)
    return results


def test_fig5_scalablekitties_throughput(benchmark):
    results = once(benchmark, _replay_all)

    rows = []
    for shards, report in results.items():
        rows.append(
            [
                shards,
                round(report.avg_throughput(), 1),
                round(report.cross_rate * 100, 2),
                round(report.finished_at or 0.0, 0),
                report.txs_committed,
            ]
        )
    left = format_table(
        ["# shards", "txs/s", "cross-shard %", "replay time (s)", "txs"], rows
    )

    eight = results[8]
    series = eight.throughput.series(bucket=30.0, end=eight.finished_at)
    marks = ", ".join(
        f"shard {shard} @ {when:.0f}s"
        for shard, when in sorted(eight.starved_at.items())
    )
    right = (
        format_series(series, x_label="time (s)", y_label="tx/s")
        + "\n\nLimit reached (ready txs < outstanding window):\n  "
        + (marks or "(never)")
    )
    emit("fig5_scalablekitties", left + "\n\n--- 8 shards over time ---\n" + right)

    throughput = {s: r.avg_throughput() for s, r in results.items()}
    # Every replayed transaction must succeed (Section VII-A).
    assert all(r.failed_txs == 0 for r in results.values())
    assert all(r.finished_at is not None for r in results.values())
    # Near-linear at small shard counts...
    assert throughput[2] > 1.4 * throughput[1]
    assert throughput[4] > 1.2 * throughput[2]
    # ...but clearly sub-linear at eight shards (the paper's dip).
    assert throughput[8] < 1.6 * throughput[4]
    # All eight shards eventually starve for ready transactions.
    assert len(eight.starved_at) == 8
    # Cross-shard rates stay in the paper's single-digit band.
    for shards in (2, 4, 8):
        assert 0.03 < results[shards].cross_rate < 0.15
