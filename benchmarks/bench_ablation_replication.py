"""Ablation: read throughput vs. replica count, staleness-bounded.

The Move protocol gives a contract exactly one writable copy; the
replication layer (``docs/REPLICATION.md``) adds verifiable read-only
mirrors so *read* traffic can fan out without moving the active copy.
This benchmark measures that trade on a read-heavy token workload:

* a source chain hosts the token (all writes land there, on a steady
  cadence, so delta syncs keep flowing);
* 1 or 4 peer chains host mirrors synced by the relay protocol
  (light-client headers + snapshot-served Merkle proofs);
* every chain runs a saturated read loop at a fixed per-chain serving
  capacity — the replica count is the only variable.

Each replica-served read samples the mirror's *observed* staleness
(source blocks between the target's view of the source head and the
height the replica reproduces).  The protocol promises ``p +
state_root_lag`` source blocks, and the gate holds **every** sample to
that bound — a replica is either current-within-bound or typed
unavailable, never quietly stale.

Gates: ≥2× read throughput from 1 to 4 replicas, zero unavailable
reads at steady state, every staleness sample within the bound, and a
byte-identical replay of the 4-replica run from the same seed.

Results: ``benchmarks/results/BENCH_replication.json`` (+ text table).
"""

from __future__ import annotations

import json

from bench_common import RESULTS_DIR, emit, full_scale, once

from repro.chain.params import burrow_params
from repro.chain.tx import DeployPayload, CallPayload, sign_transaction
from repro.crypto.keys import KeyPair
from repro.errors import ReplicaUnavailable
from repro.lang.movable import MovableContract
from repro.metrics.report import format_table
from repro.node import Node
from repro.runtime import MapSlot, external, register_contract, view

OWNER = KeyPair.from_name("replication-bench-owner")

#: accounts readers poll (all credited before measurement starts)
ACCOUNTS = 10
#: reads per simulated second one chain can serve
CAPACITY = 25.0
#: seconds between writes on the source (keeps delta syncs flowing)
WRITE_INTERVAL = 7.0
SEED = 23


@register_contract
class ReplToken(MovableContract):
    """A minimal token: one hot write method, one hot read method."""

    balances = MapSlot(int, int)

    @external
    def credit(self, account: int, amount: int) -> None:
        self.balances[account] = amount

    @view
    def balance_of(self, account: int) -> int:
        return self.balances[account]


def _params():
    if full_scale():
        return dict(duration=300.0, capacity=40.0)
    return dict(duration=120.0, capacity=CAPACITY)


def _commit(node, chain_id, payload, nonce):
    tx = sign_transaction(OWNER, payload, nonce=nonce)
    assert node.submit(chain_id, tx)
    ok = node.run_until(
        lambda: node.receipt(chain_id, tx.tx_id) is not None,
        max_time=node.now + 120.0,
    )
    assert ok, "setup transaction never committed"
    receipt = node.receipt(chain_id, tx.tx_id)
    assert receipt.success, receipt.error
    return receipt


def _run(replicas: int, seed: int):
    """One measured run; everything in the result derives from seed."""
    params = _params()
    node = Node(
        [burrow_params(i) for i in range(1, replicas + 2)],
        seed=seed,
        verify_signatures=False,
    )
    manager = node.attach_replication()
    node.start()

    receipt = _commit(
        node, 1, DeployPayload(code_hash=ReplToken.CODE_HASH), nonce=0
    )
    address = receipt.return_value
    for account in range(ACCOUNTS):
        _commit(
            node, 1,
            CallPayload(address, "credit", (account, 100 + account)),
            nonce=1 + account,
        )

    targets = list(range(2, replicas + 2))
    manager.replicate(address, 1, targets)
    ok = node.run_until(
        lambda: len(manager.mirrors(address)) == replicas
        and all(m.available for m in manager.mirrors(address).values()),
        max_time=node.now + 300.0,
    )
    assert ok, f"mirrors never went live: {manager.status(address)}"

    bound = next(iter(manager.mirrors(address).values())).staleness_bound
    stats = {
        "reads": {chain_id: 0 for chain_id in node.chains},
        "staleness": [],
        "unavailable": 0,
        "writes": 0,
    }
    end = node.now + params["duration"]
    service_time = 1.0 / params["capacity"]

    def serve(chain_id, tick):
        if node.sim.now >= end:
            return
        account = tick % ACCOUNTS
        try:
            manager.read(
                address, "balance_of", account,
                prefer_chain=chain_id, fallback=False,
            )
        except ReplicaUnavailable:
            stats["unavailable"] += 1
        else:
            stats["reads"][chain_id] += 1
            mirror = manager.mirror(address, chain_id)
            if mirror is not None:
                # Observed staleness: how far the replica trails the
                # source head *as this target has seen it*.
                store = node.chain(chain_id).light_client.store_for(1)
                stats["staleness"].append(
                    max(0, store.head_height - mirror.synced_height)
                )
        node.sim.schedule(service_time, lambda: serve(chain_id, tick + 1))

    def write(turn):
        if node.sim.now >= end:
            return
        tx = sign_transaction(
            OWNER,
            CallPayload(address, "credit", (turn % ACCOUNTS, 1000 + turn)),
            nonce=1000 + turn,
        )
        node.submit(1, tx)
        stats["writes"] += 1
        node.sim.schedule(WRITE_INTERVAL, lambda: write(turn + 1))

    for chain_id in node.chains:
        node.sim.schedule(service_time, lambda c=chain_id: serve(c, 0))
    node.sim.schedule(WRITE_INTERVAL, lambda: write(0))
    node.run_for(params["duration"])
    node.stop()

    total = sum(stats["reads"].values())
    return {
        "replicas": replicas,
        "chains": len(node.chains),
        "staleness_bound": bound,
        "reads_by_chain": {str(k): v for k, v in stats["reads"].items()},
        "reads_total": total,
        "reads_per_second": total / params["duration"],
        "unavailable": stats["unavailable"],
        "writes": stats["writes"],
        "staleness_samples": len(stats["staleness"]),
        "staleness_max": max(stats["staleness"]) if stats["staleness"] else 0,
        "staleness_mean": (
            sum(stats["staleness"]) / len(stats["staleness"])
            if stats["staleness"]
            else 0.0
        ),
        "source_height": node.chain(1).height,
        "_staleness": stats["staleness"],
    }


def _run_experiment():
    one = _run(replicas=1, seed=SEED)
    four = _run(replicas=4, seed=SEED)
    replay = _run(replicas=4, seed=SEED)
    return one, four, replay


def test_ablation_replication(benchmark):
    one, four, replay = once(benchmark, _run_experiment)

    ratio = four["reads_per_second"] / max(one["reads_per_second"], 1e-9)
    rows = []
    for run in (one, four):
        rows.append(
            [
                f"{run['replicas']} replica(s)",
                run["chains"],
                round(run["reads_per_second"], 1),
                run["staleness_max"],
                run["staleness_bound"],
                run["unavailable"],
                run["writes"],
            ]
        )
    emit(
        "ablation_replication",
        format_table(
            [
                "deployment",
                "chains",
                "reads/s",
                "max staleness",
                "bound",
                "unavailable",
                "writes",
            ],
            rows,
        )
        + f"\nread-throughput scaling 1 -> 4 replicas: {ratio:.2f}x",
    )

    # Gate 1: replicas buy read throughput (>= 2x from 1 to 4).
    assert ratio >= 2.0, f"read scaling {ratio:.2f}x < 2x"
    # Gate 2: never unavailable at steady state (mirrors stayed LIVE).
    assert one["unavailable"] == 0 and four["unavailable"] == 0
    # Gate 3: EVERY replica read sat within the staleness bound.
    for run in (one, four):
        assert run["staleness_samples"] > 0
        assert all(s <= run["staleness_bound"] for s in run["_staleness"]), (
            f"staleness exceeded the bound: max {run['staleness_max']} > "
            f"{run['staleness_bound']}"
        )
    # Gate 4: the run is a pure function of its seed.
    assert four == replay, "4-replica run did not replay seed-exactly"

    results = {
        "seed": SEED,
        "accounts": ACCOUNTS,
        "write_interval": WRITE_INTERVAL,
        "params": _params(),
        "one_replica": {k: v for k, v in one.items() if k != "_staleness"},
        "four_replicas": {k: v for k, v in four.items() if k != "_staleness"},
        "scaling": ratio,
        "replay_identical": four == replay,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_replication.json").write_text(
        json.dumps(results, indent=2, sort_keys=True) + "\n"
    )
