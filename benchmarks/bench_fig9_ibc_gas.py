"""Figure 9: gas and monetary cost of the five IBC applications.

The gas meter splits every move into the paper's stacked components:

* **move1** — the locking transaction at the source;
* **create** — recreating the contract at the target: CREATE plus, on
  Ethereum-flavoured targets, the per-byte code deposit (the hatched
  bars; ~70 % of the total for SCoin and ScalableKitties, charged again
  when giveBirth creates the kitten);
* **move2** — proof verification and SSTORE-ing the moved state;
* **complete** — the application's completion transactions.

Dollar conversion follows the paper: 1 gas = 2 Gwei, 1 ETH = $144
(December 2019).  Expected shape: Store 100 ≈ 2 Mgas dominated by
storage recreation; Burrow targets pay no code deposit.
"""

from __future__ import annotations

from bench_common import emit, once

from repro.ibc.costs import gas_to_mgas, gas_to_usd
from repro.ibc.scenarios import (
    APPS,
    APP_LABELS,
    BURROW_ID,
    ETHEREUM_ID,
    IBCExperiment,
)
from repro.metrics.report import format_table

DIRECTIONS = (
    ("Burrow -> Ethereum", BURROW_ID, ETHEREUM_ID),
    ("Ethereum -> Burrow", ETHEREUM_ID, BURROW_ID),
)


def _run_all():
    results = {}
    for app in APPS:
        for label, src, dst in DIRECTIONS:
            results[(app, label)] = IBCExperiment(seed=1).run_app(app, src, dst)
    return results


def test_fig9_ibc_gas(benchmark):
    results = once(benchmark, _run_all)

    sections = []
    gas = {}
    for label, _src, _dst in DIRECTIONS:
        rows = []
        for app in APPS:
            phases = results[(app, label)]
            g = phases.gas
            gas[(app, label)] = g
            total = sum(g.values())
            rows.append(
                [
                    APP_LABELS[app],
                    g.get("move1", 0),
                    g.get("create", 0),
                    g.get("move2", 0),
                    g.get("complete", 0),
                    round(gas_to_mgas(total), 2),
                    round(gas_to_usd(total), 2),
                ]
            )
        sections.append(f"--- Gas from {label} ---")
        sections.append(
            format_table(
                ["application", "move1", "create", "move2", "complete", "total (Mgas)", "price ($)"],
                rows,
            )
        )
        sections.append("")
    emit("fig9_ibc_gas", "\n".join(sections))

    to_eth = "Burrow -> Ethereum"
    to_burrow = "Ethereum -> Burrow"

    # Storage recreation scales linearly with the moved state.
    for label, _s, _d in DIRECTIONS:
        m1 = gas[("store1", label)]["move2"]
        m10 = gas[("store10", label)]["move2"]
        m100 = gas[("store100", label)]["move2"]
        assert m10 > 5 * m1 * 0.5 and m100 > 5 * m10
        # Store 100 lands around the paper's ~2 Mgas.
        total100 = sum(gas[("store100", label)].values())
        assert 1.8e6 < total100 < 2.6e6
        assert 0.5 < gas_to_usd(total100) < 0.8

    # Code recreation ~70% of SCoin/Kitties cost on Ethereum targets...
    for app in ("scoin", "kitties"):
        g = gas[(app, to_eth)]
        create_plus_complete_code = g["create"]
        assert create_plus_complete_code / sum(g.values()) > 0.5
    # ...while Burrow charges no per-byte deposit, so 'create' is tiny.
    for app in ("scoin", "kitties"):
        g = gas[(app, to_burrow)]
        assert g["create"] < 0.2 * sum(g.values())

    # ScalableKitties pays creation again in giveBirth on Ethereum
    # ("thus it pays for the gas again"): its completion gas exceeds
    # SCoin's transfer by far on the Ethereum target.
    assert gas[("kitties", to_eth)]["complete"] > 3 * gas[("scoin", to_eth)]["complete"]

    # move1 is cheap and nearly constant everywhere.
    for key, g in gas.items():
        assert g["move1"] < 40_000
