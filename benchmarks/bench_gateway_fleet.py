"""Gateway fleet macro benchmark: replicated serving under Zipf load.

A Zipf-skewed open-loop client population (10⁴ clients at full scale,
10³ in the CI smoke) offers a 5% move / 10% view / 85% bulk priority
mix through :class:`~repro.gateway.SimNetTransport` at a
:class:`~repro.gateway.GatewayFleet`.  The flush loop is the serving
bottleneck by construction (``batch_size / flush_interval`` = 32 tx/s
per replica against a 150 tx/s chain), so replicas are what scale —
until the chain's own capacity and the shared admission budget cap the
fleet, which is the point: N replicas never overrun the mempool bound
one gateway would respect.

CI gates (the ``fleet`` job):

* **scaling** — aggregate confirmed throughput grows ≥2.5× from one
  replica to four at fixed offered load;
* **flat past capacity** — doubling the offered load on the 4-replica
  fleet does not collapse throughput (stays within 15% either way);
* **shed placement** — ≥95% of queue sheds land on the bulk class
  (victim attribution: the classed queue evicts bulk to admit
  moves/views);
* **bounded move latency** — move-class p99 admit→confirm latency
  stays under ``MOVE_P99_BOUND`` while the fleet is saturated and
  bulk is drowning;
* **replay** — the flagship 4-replica run replays byte-identically
  from its seed: same admission-log digest, same state root.

Results: ``benchmarks/results/BENCH_gateway_fleet.json`` (+ a table).
"""

from __future__ import annotations

import json

from bench_common import RESULTS_DIR, emit, full_scale, once

from repro.metrics.report import format_table
from repro.workload.fleet import FleetWorkload

CLIENTS = 10_000 if full_scale() else 1_000
TOTAL_RATE = 200.0  # aggregate offered tx/s (fleet capacity is 128)
ZIPF_S = 1.1
DURATION = 120.0 if full_scale() else 40.0
DRAIN = 30.0
SEED = 42

QUEUE_BOUND = 256
BATCH = 16
FLUSH_INTERVAL = 0.5
MAX_BLOCK_TXS = 300
BLOCK_INTERVAL = 2.0
PER_REPLICA_TPS = BATCH / FLUSH_INTERVAL          # 32 tx/s
CHAIN_CAPACITY_TPS = MAX_BLOCK_TXS / BLOCK_INTERVAL  # 150 tx/s

MIN_SCALING_1_TO_4 = 2.5
MIN_BULK_SHED_SHARE = 0.95
MOVE_P99_BOUND = 6.0  # seconds, simulated, while saturated
FLAT_TOLERANCE = 0.15


def _run(replicas: int, total_rate: float = TOTAL_RATE, seed: int = SEED):
    workload = FleetWorkload(
        clients=CLIENTS,
        replicas=replicas,
        total_rate=total_rate,
        zipf_s=ZIPF_S,
        seed=seed,
        block_interval=BLOCK_INTERVAL,
        max_block_txs=MAX_BLOCK_TXS,
    )
    report = workload.run(duration=DURATION, drain=DRAIN)
    entry = report.to_dict()
    entry["mempool_at_end"] = len(workload.node.chain(1).mempool)
    return entry


def _sweep():
    results = {"runs": [], "determinism": {}}
    for replicas in (1, 2, 4):
        results["runs"].append(_run(replicas))
    # The same 4-replica fleet at double the offered load: saturation
    # must shed harder, not serve slower.
    overload = _run(4, total_rate=TOTAL_RATE * 2)
    overload["overload"] = True
    results["runs"].append(overload)
    # Fixed-seed replay of the flagship 4-replica run: identical
    # admission decisions (log digest) and identical end state (root).
    first = _run(4)
    second = _run(4)
    results["determinism"] = {
        "seed": SEED,
        "log_digest": first["log_digest"],
        "final_root": first["final_root"],
        "replay_identical": (
            first["log_digest"] == second["log_digest"]
            and first["final_root"] == second["final_root"]
            and first == second
        ),
    }
    return results


def test_gateway_fleet(benchmark):
    results = once(benchmark, _sweep)

    rows = [
        [
            entry["replicas"],
            f"{entry['offered_rate']:.0f}",
            entry["confirmed"],
            f"{entry['throughput']:.1f}",
            sum(entry["shed_by_class"].values()),
            f"{entry['shed_by_class'].get('bulk', 0)}",
            f"{entry['latency_p99_by_class']['move']}",
            f"{entry['peak_queue_depth']}/{QUEUE_BOUND}",
            entry["mempool_at_end"],
        ]
        for entry in results["runs"]
    ]
    table = format_table(
        [
            "replicas",
            "offered/s",
            "confirmed",
            "tx/s",
            "sheds",
            "bulk sheds",
            "move p99",
            "peak q",
            "mempool",
        ],
        rows,
    )
    table += (
        f"\nper-replica flush capacity = {BATCH} txs / {FLUSH_INTERVAL} s"
        f" = {PER_REPLICA_TPS:.0f} tx/s; chain capacity"
        f" {CHAIN_CAPACITY_TPS:.0f} tx/s; {CLIENTS} Zipf(s={ZIPF_S}) clients\n"
        f"fixed-seed replay identical: {results['determinism']['replay_identical']}"
        f" (log digest {results['determinism']['log_digest'][:16]}…)"
    )
    emit("gateway_fleet", table)

    results["gate"] = {
        "min_scaling_1_to_4": MIN_SCALING_1_TO_4,
        "min_bulk_shed_share": MIN_BULK_SHED_SHARE,
        "move_p99_bound": MOVE_P99_BOUND,
        "flat_tolerance": FLAT_TOLERANCE,
        "queue_bound": QUEUE_BOUND,
        "mempool_bound": 4 * MAX_BLOCK_TXS,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_gateway_fleet.json").write_text(
        json.dumps(results, indent=2, sort_keys=True) + "\n"
    )

    by_replicas = {
        (entry["replicas"], entry.get("overload", False)): entry
        for entry in results["runs"]
    }
    one = by_replicas[(1, False)]
    four = by_replicas[(4, False)]
    doubled = by_replicas[(4, True)]

    # Scaling: four replicas serve ≥2.5× what one does.
    scaling = four["throughput"] / one["throughput"]
    assert scaling >= MIN_SCALING_1_TO_4, (scaling, one, four)
    # Flat past capacity: 2× offered load, throughput within tolerance.
    assert doubled["throughput"] >= four["throughput"] * (1 - FLAT_TOLERANCE), (
        doubled["throughput"],
        four["throughput"],
    )
    # Shed placement: ≥95% of queue sheds land on bulk, and every shed
    # carries a typed code.
    for entry in results["runs"]:
        sheds = sum(entry["shed_by_class"].values())
        if sheds:
            bulk_share = entry["shed_by_class"].get("bulk", 0) / sheds
            assert bulk_share >= MIN_BULK_SHED_SHARE, entry["shed_by_class"]
        assert set(entry["shed_codes"]) <= {"queue_full", "rate_limited"}, entry
    # Bounded move latency at saturation (both saturated 4-replica runs).
    for entry in (four, doubled):
        p99 = entry["latency_p99_by_class"]["move"]
        assert p99 is not None and p99 <= MOVE_P99_BOUND, entry
    # Boundedness rides along: queue high-water marks and the mempool
    # respect their limits however hard the population pushes.
    for entry in results["runs"]:
        assert entry["peak_queue_depth"] <= QUEUE_BOUND
        assert entry["mempool_at_end"] <= 4 * MAX_BLOCK_TXS
        assert entry["unresolved"] == 0
    assert results["determinism"]["replay_identical"]
