"""Ablation: autonomous Move-based rebalancing vs. static hash partitioning.

The load-balancing ablation (``bench_ablation_loadbalance.py``) shows a
*one-shot, client-driven* rebalancing pass recovering a skewed
deployment.  This benchmark closes the full control loop instead: the
:class:`~repro.rebalance.rebalancer.Rebalancer` watches the cluster's
signal plane on the simulated clock and issues Moves by itself, with
hysteresis and cooldowns keeping it from thrashing.

Scenario: a 4-shard cluster under **hash partitioning** (the paper's
static placement) with a *skewed community* — every client whose
account hashes to shard 0 runs flat out while the rest mostly idle, so
shard 0 saturates while three shards sit near-empty.  Static placement
has no answer to this; the rebalancer migrates the hot accounts off
shard 0 until its pressure drops below the hysteresis exit.

Three runs from identical seeds:

* **static** — no rebalancer: the baseline the paper's hash
  partitioning would give;
* **auto** — the rebalancer active: must beat static on throughput
  *and* p99 latency;
* **replay** — auto again, byte-for-byte: the decision log must be
  identical (decisions derive only from public, seeded state).

Gates: auto > static throughput, auto p99 < static p99, zero thrash
(no contract decided twice within one contract-cooldown window, never
more than ``max_moves_per_tick`` decisions per tick), at least one
completed move, and an identical replay log.

Results: ``benchmarks/results/BENCH_rebalance.json`` (+ a text table).
"""

from __future__ import annotations

import json

from bench_common import RESULTS_DIR, emit, full_scale, once

from repro.metrics.report import format_table
from repro.rebalance import RebalancePolicy
from repro.sharding.balancer import ShardLoadMonitor
from repro.sharding.cluster import ShardedCluster
from repro.workload.clients import ScoinWorkload

SHARDS = 4
#: low per-block capacity so the hot community actually saturates shard 0
BLOCK_CAPACITY = 10
#: seconds an off-community client pauses between operations
BACKGROUND_THINK = 100.0
#: the policy knobs under test (also what the no-thrash gate checks)
POLICY = dict(
    hot_enter=0.8,
    hot_exit=0.5,
    min_gap=0.3,
    contract_cooldown=300.0,
    shard_cooldown=20.0,
    max_moves_per_tick=4,
    max_inflight=8,
)
INTERVAL = 20.0


def _params():
    if full_scale():
        return dict(clients=40, duration=400.0, warmup=150.0)
    return dict(clients=25, duration=300.0, warmup=150.0)


def _percentile(samples, fraction):
    """Nearest-rank percentile (no numpy dependency)."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1, int(fraction * len(ordered)) - 1))
    return ordered[rank]


def _run_once(auto: bool):
    params = _params()
    cluster = ShardedCluster(
        num_shards=SHARDS, seed=77, max_block_txs=BLOCK_CAPACITY
    )
    workload = ScoinWorkload(
        cluster,
        clients_per_shard=params["clients"],
        cross_rate=0.0,
        seed=5,
        placement="hash",       # the paper's static partitioning
        hot_shard=0,            # ...with a skewed community on shard 0
        background_think=BACKGROUND_THINK,
    )
    monitor = ShardLoadMonitor(cluster.shards, window_blocks=8)

    # Build the world first; the rebalancer only starts once placement
    # is settled (it must react to workload skew, not setup traffic).
    sim = cluster.sim
    cluster.start()
    ready = [False]
    workload.setup(lambda: ready.__setitem__(0, True))
    while not ready[0]:
        progressed = sim.run(until=sim.now + 10.0)
        if progressed == 0 and not ready[0] and sim.pending() == 0:
            raise RuntimeError("setup stalled")

    rebalancer = None
    if auto:
        rebalancer = cluster.auto_rebalancer(
            actuator=workload.relocate_actuator(),
            policy=RebalancePolicy(**POLICY),
            interval=INTERVAL,
        )
        rebalancer.start()
    report = workload.measure_again(params["duration"], warmup=params["warmup"])
    if rebalancer is not None:
        rebalancer.stop()
    return report, monitor.utilizations(), rebalancer


def _run_experiment():
    static_report, static_util, _ = _run_once(auto=False)
    auto_report, auto_util, rebalancer = _run_once(auto=True)
    replay_report, _, replayed = _run_once(auto=True)
    return (
        static_report,
        static_util,
        auto_report,
        auto_util,
        rebalancer,
        replay_report,
        replayed,
    )


def _assert_no_thrash(decision_log, contract_cooldown, max_moves_per_tick):
    """Zero thrash: per-contract decisions at least one cooldown apart,
    and never more than the per-tick bound in one evaluation."""
    last_decided = {}
    per_tick = {}
    for entry in decision_log:
        contract, at = entry["contract"], entry["at"]
        if contract in last_decided:
            gap = at - last_decided[contract]
            assert gap >= contract_cooldown, (
                f"{contract} re-decided after {gap:.0f}s < {contract_cooldown}s"
            )
        last_decided[contract] = at
        per_tick[entry["tick"]] = per_tick.get(entry["tick"], 0) + 1
    assert all(count <= max_moves_per_tick for count in per_tick.values())


def test_ablation_rebalance(benchmark):
    (
        static_report,
        static_util,
        auto_report,
        auto_util,
        rebalancer,
        replay_report,
        replayed,
    ) = once(benchmark, _run_experiment)

    static_p99 = _percentile(static_report.latency.samples("single-shard"), 0.99)
    auto_p99 = _percentile(auto_report.latency.samples("single-shard"), 0.99)
    moved = len(rebalancer.moves("ok"))
    failed = len(rebalancer.moves("failed"))
    auto_log = json.dumps(rebalancer.decision_log, sort_keys=True)
    replay_log = json.dumps(replayed.decision_log, sort_keys=True)

    rows = [
        [
            "static hash partitioning",
            round(static_report.ops_per_second, 2),
            round(static_report.latency.mean("single-shard"), 1),
            round(static_p99, 1),
            " ".join(f"{u:.2f}" for u in static_util),
            0,
        ],
        [
            "auto-rebalanced (Move control loop)",
            round(auto_report.ops_per_second, 2),
            round(auto_report.latency.mean("single-shard"), 1),
            round(auto_p99, 1),
            " ".join(f"{u:.2f}" for u in auto_util),
            moved,
        ],
    ]
    emit(
        "ablation_rebalance",
        format_table(
            [
                "deployment",
                "ops/s",
                "mean lat (s)",
                "p99 lat (s)",
                "per-shard utilization",
                "moves",
            ],
            rows,
        ),
    )

    results = {
        "shards": SHARDS,
        "block_capacity": BLOCK_CAPACITY,
        "policy": POLICY,
        "interval": INTERVAL,
        "static": {
            "ops_per_second": static_report.ops_per_second,
            "mean_latency": static_report.latency.mean("single-shard"),
            "p99_latency": static_p99,
            "utilization": static_util,
        },
        "auto": {
            "ops_per_second": auto_report.ops_per_second,
            "mean_latency": auto_report.latency.mean("single-shard"),
            "p99_latency": auto_p99,
            "utilization": auto_util,
            "moves_ok": moved,
            "moves_failed": failed,
            "decisions": len(rebalancer.decision_log),
            "ticks": rebalancer.ticks,
        },
        "replay": {
            "ops_per_second": replay_report.ops_per_second,
            "decision_log_identical": auto_log == replay_log,
        },
        "decision_log": rebalancer.decision_log,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_rebalance.json").write_text(
        json.dumps(results, indent=2, sort_keys=True) + "\n"
    )

    # The skewed community saturates shard 0 under static placement...
    assert static_util[0] > 0.8
    # ...the control loop actually moves contracts...
    assert moved > 0
    # ...and wins on throughput AND tail latency.
    assert auto_report.ops_per_second > static_report.ops_per_second
    assert auto_p99 < static_p99
    # Zero thrash: bounded moves per window, spaced by the cooldown.
    _assert_no_thrash(
        rebalancer.decision_log,
        POLICY["contract_cooldown"],
        POLICY["max_moves_per_tick"],
    )
    # Decisions replay byte-identically from the same seeds.
    assert auto_log == replay_log
