"""Macro benchmark: a million-account state end to end.

Builds a Burrow-flavoured chain whose IAVL world state holds 10**6
funded accounts (10**5 at the default ``small`` scale — CI's smoke
variant) and measures the three costs a serving node actually pays at
that population:

* **WorldState.commit** — the initial bulk commit that builds the
  tree, and an incremental commit after touching a small hot set
  (the per-block steady-state cost);
* **block production** — SCoin token-transfer blocks executed over the
  full-size state, serial and on the 4-worker process backend, with
  receipts and roots asserted identical;
* **proof serving** — ``prove_account`` membership proofs sampled
  across the population, each recomputed back to the committed root.

Results: ``benchmarks/results/BENCH_macro.json`` (+ a text table).
``cpu_count`` is recorded because the measured block-production
numbers only show multi-core wins when the host has cores to give
(see docs/PERFORMANCE.md on single-core honesty).
"""

from __future__ import annotations

import json
import os
import time

from bench_common import RESULTS_DIR, emit, full_scale, once

from repro.apps.scoin import SCoin
from repro.chain.chain import Chain
from repro.chain.params import burrow_params
from repro.chain.tx import CallPayload, DeployPayload, sign_transaction
from repro.crypto.keys import Address, KeyPair
from repro.metrics.report import format_table

if full_scale():
    ACCOUNTS = 1_000_000
    HOT_SET = 10_000
    PROOF_SAMPLES = 2_000
    USERS, BLOCKS = 64, 4
else:
    ACCOUNTS = 100_000
    HOT_SET = 1_000
    PROOF_SAMPLES = 500
    USERS, BLOCKS = 32, 2

KEYPAIRS = [KeyPair.from_name(f"macro-user-{i}") for i in range(USERS)]


def _population() -> list:
    """The bulk account set: deterministic synthetic addresses."""
    return [Address(i.to_bytes(20, "big")) for i in range(1, ACCOUNTS + 1)]


def _build_state(chain: Chain, addresses) -> dict:
    """Fund the population and time the two commit regimes."""
    start = time.perf_counter()
    for address in addresses:
        chain.state.add_balance(address, 1_000)
    populate = time.perf_counter() - start

    start = time.perf_counter()
    chain.state.commit()
    initial_commit = time.perf_counter() - start

    # Steady state: one block's worth of balance churn on a hot subset.
    for address in addresses[:HOT_SET]:
        chain.state.add_balance(address, 1)
    start = time.perf_counter()
    chain.state.commit()
    incremental_commit = time.perf_counter() - start

    return {
        "populate_seconds": round(populate, 3),
        "initial_commit_seconds": round(initial_commit, 3),
        "initial_commit_us_per_account": round(initial_commit / ACCOUNTS * 1e6, 2),
        "incremental_commit_seconds": round(incremental_commit, 3),
        "incremental_commit_us_per_touched": round(
            incremental_commit / HOT_SET * 1e6, 2
        ),
    }


def _deploy_scoin(chain: Chain):
    """SCoin + one funded SAccount per benchmark user."""
    chain.fund({kp.address: 10**9 for kp in KEYPAIRS})
    deploy = sign_transaction(
        KEYPAIRS[0], DeployPayload(code_hash=SCoin.CODE_HASH), nonce=1
    )
    chain.submit(deploy)
    chain.produce_block(timestamp=1.0)
    token = chain.receipts[deploy.tx_id].return_value
    creates = [
        sign_transaction(
            kp, CallPayload(token, "new_account_for", (kp.address,)), nonce=10 + i
        )
        for i, kp in enumerate(KEYPAIRS)
    ]
    for tx in creates:
        chain.submit(tx)
    chain.produce_block(timestamp=2.0)
    accounts = [chain.receipts[tx.tx_id].return_value[0] for tx in creates]
    mints = [
        sign_transaction(
            KEYPAIRS[0], CallPayload(token, "mint_to", (a, 10_000)), nonce=100 + i
        )
        for i, a in enumerate(accounts)
    ]
    for tx in mints:
        chain.submit(tx)
    chain.produce_block(timestamp=3.0)
    return accounts


def _produce_blocks(chain: Chain, accounts) -> tuple:
    """Conflict-light token-transfer blocks over the macro state.

    The first block is timed separately: on the process backend it
    pays the one-time worker-pool spin-up (forking next to the full
    macro heap), which would otherwise masquerade as per-block cost.
    """
    nonce = 1000
    all_txs = []
    timestamp = 4.0
    first_block = None
    first_block_txs = 0
    start = time.perf_counter()
    for block_index in range(BLOCKS + 1):
        for pair in range(USERS // 2):
            src = (2 * pair + block_index) % USERS
            dst = (2 * pair + 1 + block_index) % USERS
            if src == dst:
                continue
            tx = sign_transaction(
                KEYPAIRS[src],
                CallPayload(accounts[src], "transfer_tokens", (accounts[dst], 1)),
                nonce=nonce,
            )
            nonce += 1
            all_txs.append(tx)
            chain.submit(tx)
        chain.produce_block(timestamp=timestamp)
        timestamp += 5.0
        if first_block is None:
            first_block = time.perf_counter() - start
            first_block_txs = len(all_txs)
            start = time.perf_counter()
    wall = time.perf_counter() - start
    digest = tuple(
        (chain.receipts[tx.tx_id].success, chain.receipts[tx.tx_id].gas_used)
        for tx in all_txs
    )
    assert all(ok for ok, _gas in digest), "macro workload must not abort"
    steady_txs = len(all_txs) - first_block_txs
    return wall, steady_txs, first_block, digest, chain.state.committed_root


def _serve_proofs(chain: Chain, addresses) -> dict:
    """Sample membership proofs across the population and verify them."""
    stride = max(1, len(addresses) // PROOF_SAMPLES)
    sample = addresses[::stride][:PROOF_SAMPLES]
    root = chain.state.committed_root
    start = time.perf_counter()
    proofs = [chain.state.prove_account(address) for address in sample]
    prove = time.perf_counter() - start
    start = time.perf_counter()
    for proof in proofs:
        assert proof.computed_root() == root, "account proof must recompute the root"
    verify = time.perf_counter() - start
    return {
        "samples": len(sample),
        "prove_seconds": round(prove, 4),
        "prove_us_per_proof": round(prove / len(sample) * 1e6, 2),
        "verify_seconds": round(verify, 4),
        "verify_us_per_proof": round(verify / len(sample) * 1e6, 2),
        "mean_proof_steps": round(
            sum(len(p.steps) for p in proofs) / len(proofs), 1
        ),
    }


def _run_macro() -> dict:
    results = {
        "scale": "full" if full_scale() else "small",
        "accounts": ACCOUNTS,
        "cpu_count": os.cpu_count() or 1,
    }
    addresses = _population()

    blocks = {}
    baseline = None
    for label, workers, backend in (
        ("serial", 0, "thread"),
        ("process_4w", 4, "process"),
    ):
        chain = Chain(
            burrow_params(
                1, executor_workers=workers, executor_backend=backend
            ),
            verify_signatures=True,
        )
        if baseline is None:
            # Commit and proof costs are a property of the state, not
            # the executor — measure them once, on the serial chain.
            results["commit"] = _build_state(chain, addresses)
        else:
            for address in addresses:
                chain.state.add_balance(address, 1_000)
            chain.state.commit()
            for address in addresses[:HOT_SET]:
                chain.state.add_balance(address, 1)
            chain.state.commit()
        accounts = _deploy_scoin(chain)
        wall, tx_count, first_block, digest, root = _produce_blocks(chain, accounts)
        blocks[label] = {
            "backend": backend,
            "workers": workers,
            "txs": tx_count,
            "seconds": round(wall, 4),
            "tx_per_second": round(tx_count / wall, 1) if wall > 0 else None,
            "first_block_seconds": round(first_block, 4),
        }
        if baseline is None:
            baseline = (digest, root, wall)
            results["proofs"] = _serve_proofs(chain, addresses)
        else:
            assert digest == baseline[0], f"{label}: receipts diverged from serial"
            assert root == baseline[1], f"{label}: state root diverged from serial"
            blocks[label]["measured_speedup_vs_serial"] = (
                round(baseline[2] / wall, 3) if wall > 0 else None
            )
        chain.close()
    results["block_production"] = blocks
    return results


def test_macro_millionaccounts(benchmark):
    results = once(benchmark, _run_macro)

    commit = results["commit"]
    proofs = results["proofs"]
    rows = [
        ["initial commit", f"{results['accounts']} accts",
         f"{commit['initial_commit_seconds']}s",
         f"{commit['initial_commit_us_per_account']}us/acct"],
        ["incremental commit", f"{HOT_SET} touched",
         f"{commit['incremental_commit_seconds']}s",
         f"{commit['incremental_commit_us_per_touched']}us/acct"],
        ["prove_account", f"{proofs['samples']} proofs",
         f"{proofs['prove_seconds']}s", f"{proofs['prove_us_per_proof']}us/proof"],
        ["verify proof", f"{proofs['samples']} proofs",
         f"{proofs['verify_seconds']}s", f"{proofs['verify_us_per_proof']}us/proof"],
    ]
    for label, stats in results["block_production"].items():
        rows.append(
            [f"blocks ({label})", f"{stats['txs']} txs",
             f"{stats['seconds']}s", f"{stats['tx_per_second']} tx/s"]
        )
        rows.append(
            [f"  first block ({label})", "spin-up + 1 block",
             f"{stats['first_block_seconds']}s", ""]
        )
    table = format_table(["phase", "volume", "wall clock", "rate"], rows)
    table += (
        f"\nscale={results['scale']} accounts={results['accounts']} "
        f"cpu_count={results['cpu_count']}\n"
        "determinism: process-backend receipts + roots identical to serial"
    )
    emit("macro_millionaccounts", table)

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_macro.json").write_text(
        json.dumps(results, indent=2, sort_keys=True) + "\n"
    )

    # Sanity gates (scale-independent): incremental commits must be far
    # cheaper than rebuilding, and proof serving must stay logarithmic
    # (well under a millisecond per proof even at 10**6 leaves).
    assert commit["incremental_commit_seconds"] < commit["initial_commit_seconds"]
    assert proofs["prove_us_per_proof"] < 50_000
    assert proofs["mean_proof_steps"] < 64
