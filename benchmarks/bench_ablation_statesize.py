"""Ablation: move cost vs. moved state size (Fig. 9's underlying law).

Sweeps the Store-N contract from N = 1 to N = 200 slots and fits the
per-slot cost of Move2: gas should grow by ~SSTORE_SET (20 000) per
32-byte slot plus a near-constant proof/creation overhead, and the
proof bundle's byte size should grow by ~64+ bytes per slot.  This is
the quantitative basis for the paper's advice (Section I) to split
large-state contracts into one-contract-per-user objects before moving
them.
"""

from __future__ import annotations

from bench_common import emit, once

from repro.apps.store import StateStore
from repro.chain.tx import DeployPayload, Move2Payload
from repro.metrics.report import format_table
from tests.helpers import ALICE, ManualClock, full_move, make_chain_pair, produce, run_tx

SLOT_COUNTS = (1, 5, 10, 25, 50, 100, 200)


def _measure():
    rows = {}
    for slots in SLOT_COUNTS:
        burrow, ethereum = make_chain_pair()
        clock = ManualClock()
        store = run_tx(
            burrow, clock, ALICE,
            DeployPayload(code_hash=StateStore.CODE_HASH, args=(slots,)),
        ).return_value
        # Build the proof by hand to capture its size.
        from repro.chain.tx import Move1Payload

        receipt1 = run_tx(
            burrow, clock, ALICE,
            Move1Payload(contract=store, target_chain=ethereum.chain_id),
        )
        while burrow.height < burrow.proof_ready_height(receipt1.block_height):
            produce(burrow, clock)
        bundle = burrow.prove_contract_at(store, receipt1.block_height)
        receipt2 = run_tx(ethereum, clock, ALICE, Move2Payload(bundle=bundle))
        assert receipt2.success, receipt2.error
        rows[slots] = (receipt2.gas_used, bundle.size_bytes())
    return rows


def test_ablation_state_size(benchmark):
    rows = once(benchmark, _measure)

    table = format_table(
        ["slots", "Move2 gas", "gas/slot (marginal)", "proof bytes"],
        [
            [
                slots,
                rows[slots][0],
                round(
                    (rows[slots][0] - rows[SLOT_COUNTS[0]][0])
                    / max(slots - SLOT_COUNTS[0], 1)
                ),
                rows[slots][1],
            ]
            for slots in SLOT_COUNTS
        ],
    )
    emit("ablation_statesize", table)

    gas = {slots: g for slots, (g, _b) in rows.items()}
    size = {slots: b for slots, (_g, b) in rows.items()}
    # Monotone growth in both dimensions.
    assert all(gas[a] < gas[b] for a, b in zip(SLOT_COUNTS, SLOT_COUNTS[1:]))
    assert all(size[a] < size[b] for a, b in zip(SLOT_COUNTS, SLOT_COUNTS[1:]))
    # The marginal slot costs ~SSTORE_SET plus small proof overhead.
    marginal = (gas[200] - gas[100]) / 100
    assert 20_000 <= marginal < 23_000
    # Proof bytes grow by at least key+value (64 B) per slot.
    assert (size[200] - size[100]) / 100 >= 64
