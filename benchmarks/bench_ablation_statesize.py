"""Ablation: move cost vs. moved state size (Fig. 9's underlying law).

Sweeps the Store-N contract from N = 1 to N = 200 slots and fits the
per-slot cost of Move2: gas should grow by ~SSTORE_SET (20 000) per
32-byte slot plus a near-constant proof/creation overhead, and the
proof bundle's byte size should grow by ~64+ bytes per slot.  This is
the quantitative basis for the paper's advice (Section I) to split
large-state contracts into one-contract-per-user objects before moving
them.

A second sweep measures commit throughput on a resident large-state
contract: with one live storage trie per contract and per-contract
dirty-slot sets, committing a block that touches ``d`` of ``S`` slots
folds only the ``d`` dirty slots (O(d log S)) instead of rebuilding
the whole trie (O(S log S)).  The table reports blocks/s for 1–200
dirty slots of a 10 000-slot contract against the canonical-rebuild
baseline every Move2 verifier pays.
"""

from __future__ import annotations

import time

from bench_common import emit, once

from repro.apps.store import StateStore
from repro.chain.tx import DeployPayload, Move2Payload
from repro.crypto.keys import Address
from repro.merkle.iavl import IAVLTree
from repro.metrics.report import format_table
from repro.statedb.state import WorldState, compute_storage_root
from tests.helpers import ALICE, ManualClock, full_move, make_chain_pair, produce, run_tx

SLOT_COUNTS = (1, 5, 10, 25, 50, 100, 200)

COMMIT_TOTAL_SLOTS = 10_000
DIRTY_COUNTS = (1, 5, 10, 25, 50, 100, 200)


def _measure_move_cost():
    rows = {}
    for slots in SLOT_COUNTS:
        burrow, ethereum = make_chain_pair()
        clock = ManualClock()
        store = run_tx(
            burrow, clock, ALICE,
            DeployPayload(code_hash=StateStore.CODE_HASH, args=(slots,)),
        ).return_value
        # Build the proof by hand to capture its size.
        from repro.chain.tx import Move1Payload

        receipt1 = run_tx(
            burrow, clock, ALICE,
            Move1Payload(contract=store, target_chain=ethereum.chain_id),
        )
        while burrow.height < burrow.proof_ready_height(receipt1.block_height):
            produce(burrow, clock)
        bundle = burrow.prove_contract_at(store, receipt1.block_height)
        receipt2 = run_tx(ethereum, clock, ALICE, Move2Payload(bundle=bundle))
        assert receipt2.success, receipt2.error
        rows[slots] = (receipt2.gas_used, bundle.size_bytes())
    return rows


def _slot_key(i: int) -> bytes:
    return b"slot%05d" % i


def _measure_commit_throughput():
    contract = Address(b"\x42" * 20)
    state = WorldState(chain_id=1, tree_factory=IAVLTree)
    state.create_contract(contract, b"\x01" * 32, b"bench-code")
    state.load_storage(
        contract,
        {_slot_key(i): b"v%05d" % i for i in range(COMMIT_TOTAL_SLOTS)},
    )
    state.commit()

    # Baseline: the canonical sorted rebuild of the full 10k-slot trie
    # (what commit() cost per dirty contract before incremental folds,
    # and what every Move2 verifier still pays once per move).
    storage = state.require_contract(contract).storage
    samples = []
    for _ in range(3):
        start = time.perf_counter()
        compute_storage_root(state.tree_factory, storage)
        samples.append(time.perf_counter() - start)
    rebuild_seconds = min(samples)

    rows = {}
    for dirty in DIRTY_COUNTS:
        blocks = max(5, 400 // dirty)
        start = time.perf_counter()
        for block in range(blocks):
            for i in range(dirty):
                state.storage_set(
                    contract, _slot_key(i), b"d%05d.%05d" % (dirty, block)
                )
            state.commit()
        elapsed = time.perf_counter() - start
        incremental = elapsed / blocks
        rows[dirty] = (1.0 / incremental, rebuild_seconds / incremental)
    return rows


def _measure_all():
    return _measure_move_cost(), _measure_commit_throughput()


def test_ablation_state_size(benchmark):
    move_rows, commit_rows = once(benchmark, _measure_all)

    move_table = format_table(
        ["slots", "Move2 gas", "gas/slot (marginal)", "proof bytes"],
        [
            [
                slots,
                move_rows[slots][0],
                round(
                    (move_rows[slots][0] - move_rows[SLOT_COUNTS[0]][0])
                    / max(slots - SLOT_COUNTS[0], 1)
                ),
                move_rows[slots][1],
            ]
            for slots in SLOT_COUNTS
        ],
    )
    commit_table = format_table(
        ["dirty slots", "commit blocks/s", "speedup vs rebuild"],
        [
            [
                dirty,
                round(commit_rows[dirty][0], 1),
                f"{commit_rows[dirty][1]:.1f}x",
            ]
            for dirty in DIRTY_COUNTS
        ],
    )
    emit(
        "ablation_statesize",
        move_table
        + f"\n\ncommit throughput, {COMMIT_TOTAL_SLOTS}-slot contract"
        + " (incremental vs canonical rebuild):\n"
        + commit_table,
    )

    gas = {slots: g for slots, (g, _b) in move_rows.items()}
    size = {slots: b for slots, (_g, b) in move_rows.items()}
    # Monotone growth in both dimensions.
    assert all(gas[a] < gas[b] for a, b in zip(SLOT_COUNTS, SLOT_COUNTS[1:]))
    assert all(size[a] < size[b] for a, b in zip(SLOT_COUNTS, SLOT_COUNTS[1:]))
    # The marginal slot costs ~SSTORE_SET plus small proof overhead.
    marginal = (gas[200] - gas[100]) / 100
    assert 20_000 <= marginal < 23_000
    # Proof bytes grow by at least key+value (64 B) per slot.
    assert (size[200] - size[100]) / 100 >= 64
    # Incremental commits must beat the full rebuild by >=5x while at
    # most 1% of the contract's slots are dirty (the acceptance bar).
    for dirty in DIRTY_COUNTS:
        if dirty <= COMMIT_TOTAL_SLOTS // 100:
            assert commit_rows[dirty][1] >= 5.0, (
                f"{dirty} dirty slots: only {commit_rows[dirty][1]:.1f}x"
            )
