"""Figure 7: latency CDFs for the SCoin workload, 4 shards, 10 % cross.

Right plot (conflict-free oracle mode): single-shard transactions take
about one block; cross-shard operations take about five blocks (Move1,
two-block proof wait, Move2, final transfer), so roughly 10 % of the
aggregated distribution sits at the cross-shard plateau — and there is
no convoy effect: cross-shard traffic does not delay single-shard
transactions.

Left plot (retry mode, Section VII-B.1): clients pick targets blindly,
conflicting transactions are retried after a random 0–10-block backoff;
the retry count distribution is highly skewed (paper: 66 % of retrying
transactions retry once, ~1 % more than three times).
"""

from __future__ import annotations

from bench_common import emit, full_scale, once

from repro.metrics.cdf import cdf_points, percentile
from repro.metrics.report import format_table
from repro.sharding.cluster import ShardedCluster
from repro.workload.clients import ScoinWorkload

SHARDS = 4
CROSS_RATE = 0.10


def _params():
    if full_scale():
        return dict(clients=250, duration=900.0, warmup=100.0)
    return dict(clients=40, duration=500.0, warmup=60.0)


def _run_both_modes():
    params = _params()
    reports = {}
    for retry_mode in (False, True):
        cluster = ShardedCluster(num_shards=SHARDS, seed=200 + retry_mode)
        workload = ScoinWorkload(
            cluster,
            clients_per_shard=params["clients"],
            cross_rate=CROSS_RATE,
            retry_mode=retry_mode,
            seed=9,
        )
        reports[retry_mode] = workload.run(params["duration"], warmup=params["warmup"])
    return reports


def _cdf_table(report) -> str:
    rows = []
    for q in (0.10, 0.25, 0.50, 0.75, 0.90, 0.99):
        row = [f"p{int(q * 100)}"]
        for kind in ("single-shard", "cross-shard"):
            samples = report.latency.samples(kind)
            row.append(round(percentile(samples, q), 1) if samples else "-")
        aggregated = report.latency.all_samples()
        row.append(round(percentile(aggregated, q), 1) if aggregated else "-")
        rows.append(row)
    return format_table(["quantile", "single-shard (s)", "cross-shard (s)", "aggregated (s)"], rows)


def test_fig7_latency_cdfs(benchmark):
    reports = once(benchmark, _run_both_modes)
    oracle, retry = reports[False], reports[True]

    sections = ["--- conflict-free (Fig. 7 right) ---", _cdf_table(oracle)]
    sections += [
        "",
        f"mean single-shard: {oracle.latency.mean('single-shard'):.1f} s "
        f"(paper: ~7 s); mean cross-shard: {oracle.latency.mean('cross-shard'):.1f} s "
        f"(paper: ~34 s)",
        "",
        "--- with conflicts and retries (Fig. 7 left) ---",
        _cdf_table(retry),
    ]
    hist = retry.retry_histogram()
    retried = {k: v for k, v in hist.items() if k >= 1}
    total_retried = sum(retried.values())
    if total_retried:
        once_share = retried.get(1, 0) / total_retried
        many_share = sum(v for k, v in retried.items() if k > 3) / total_retried
        sections += [
            "",
            f"retrying ops: {total_retried} of {retry.ops_completed}; "
            f"retried once: {once_share * 100:.0f}% (paper: 66%); "
            f"retried >3 times: {many_share * 100:.1f}% (paper: ~1%)",
        ]
    emit("fig7_latency", "\n".join(str(s) for s in sections))

    # Oracle mode shape: cross ~ 5 blocks vs single ~ 1 block.
    single = oracle.latency.mean("single-shard")
    cross = oracle.latency.mean("cross-shard")
    assert 3.0 < single < 11.0
    assert 20.0 < cross < 45.0
    assert cross > 3.5 * single
    # No convoy effect: single-shard latency unaffected by cross traffic
    # (p90 of single stays around one block interval).
    assert percentile(oracle.latency.samples("single-shard"), 0.9) < 3 * single
    # Roughly 10% of aggregated ops sit at the cross-shard plateau.
    aggregated = oracle.latency.all_samples()
    slow = sum(1 for s in aggregated if s > 15.0) / len(aggregated)
    assert 0.04 < slow < 0.2
    # Retry mode: conflicts happened, and the retry-count distribution
    # is highly skewed, as the paper reports (66% retry once, ~1% more
    # than three times).
    assert retry.failures > 0
    assert total_retried > 0
    assert retried.get(1, 0) == max(retried.values())
    assert retried.get(1, 0) / total_retried > 0.5
    assert sum(v for k, v in retried.items() if k > 3) / total_retried < 0.08
    # Conflicts raise latency relative to the oracle run.
    assert percentile(retry.latency.all_samples(), 0.99) >= percentile(aggregated, 0.99)
